//! Bit-parallel world blocks — the 64-lane possible-world kernel.
//!
//! A [`WorldBlock`] packs **64 possible worlds** into `u64` lane masks:
//! one word per node (bit `j` = "node self-defaulted in lane `j`'s
//! world") and one word per edge (bit `j` = "edge survived in lane `j`'s
//! world"). [`BlockKernel`] then advances *all 64 worlds per traversal
//! step* with bitwise AND/OR over the graph's CSR arrays — the classic
//! SIMD-within-a-register technique — so the reachability BFS that
//! dominated the scalar data path is amortized 64×.
//!
//! Since the counter-RNG refactor, **materialization is bit-parallel
//! too**: lane words are synthesized transposed, straight from the
//! stateless `(seed, block, item, level)` generator of [`crate::coins`]
//! — one 64-lane Bernoulli word costs an expected `log2(64) + O(1)`
//! uniform words instead of 64 sequential draws. And because the
//! generator is stateless per item, **edge words are frontier-lazy**:
//! [`WorldBlock::edge_word`] synthesizes an edge's lane word the first
//! time a traversal touches it, so a block costs `O(n + edges reached)`
//! coins instead of `O(n + m)`.
//!
//! # The `(seed, block, lane)` stream contract
//!
//! Sample `i` occupies lane `i % 64` of block `i / 64`, and its world
//! is **exactly** [`PossibleWorld::sample_indexed(graph, seed, i)`]:
//! every coin is a fixed bit of the stateless synthesis keyed by
//! `(seed, i / 64, item)` — see [`crate::coins`] for the generator.
//! Every sampler in this crate (the block kernels, the scalar
//! [`ForwardSampler`](crate::ForwardSampler) and
//! [`ReverseSampler`](crate::ReverseSampler) references, and the
//! parallel drivers) evaluates deterministic functions of *those*
//! worlds, which is why counts are **bit-identical** across lazy and
//! eager materialization, block and scalar evaluation, any sample
//! budget (including budgets that are not multiples of 64, served
//! through partial lane masks), and any thread count.
//!
//! [`PossibleWorld::sample_indexed(graph, seed, i)`]: PossibleWorld::sample_indexed

use crate::coins::{bernoulli_bit, bernoulli_word, block_key, edge_key, node_key};
use crate::coins::{CoinTable, CoinUsage};
use crate::world::PossibleWorld;
use ugraph::{NodeId, UncertainGraph};

/// Number of possible worlds packed into one [`WorldBlock`]: the lane
/// width of the `u64` SIMD-within-a-register kernel.
pub const LANES: usize = 64;

/// All-lanes mask for a block holding `lanes` worlds (`lanes ≤ 64`).
#[inline]
pub fn lane_mask(lanes: usize) -> u64 {
    assert!(lanes <= LANES, "a block holds at most {LANES} lanes");
    if lanes == LANES {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Where the current block's lanes draw their coins from.
#[derive(Debug, Clone)]
enum LaneSource {
    /// No block materialized yet.
    Empty,
    /// Lanes are the 64 consecutive samples of one block: coins come
    /// from transposed 64-lane synthesis under one block key.
    Aligned { key: u64 },
    /// Lane `j` is the arbitrary sample `ids[j]` (BSRBK hash order):
    /// each lane projects its own home block's synthesis, one bit at a
    /// time.
    Scattered { keys: Vec<(u64, u32)> },
}

/// 64 possible worlds packed as per-node and per-edge `u64` lane masks.
///
/// Node words are synthesized eagerly at
/// [`materialize`](Self::materialize) time (the forward kernel needs
/// every node's seeds); edge words are **frontier-lazy** — synthesized
/// by [`edge_word`](Self::edge_word) on first touch and cached for the
/// rest of the block via epoch stamps, so untouched edges cost nothing.
///
/// Buffers are reusable: materialization overwrites them in place, so a
/// sampling loop allocates once per run.
#[derive(Debug, Clone)]
pub struct WorldBlock {
    /// `node_words[v]` bit `j` — node `v` self-defaulted in lane `j`.
    node_words: Vec<u64>,
    /// `edge_words[e]` bit `j` — edge `e` (canonical id) survived in
    /// lane `j`. Valid only where `edge_epoch[e] == epoch`.
    edge_words: Vec<u64>,
    /// Lazy-materialization stamps: `edge_words[e]` belongs to the
    /// current block iff `edge_epoch[e] == epoch`.
    edge_epoch: Vec<u32>,
    epoch: u32,
    /// Which lanes hold materialized worlds.
    lane_mask: u64,
    source: LaneSource,
    /// Edges not yet materialized in the current block (flushed into
    /// `usage.edge_words_skipped` when the next block begins).
    pending_edges: u64,
    usage: CoinUsage,
}

impl WorldBlock {
    /// Creates an empty block with buffers sized for `graph`.
    pub fn new(graph: &UncertainGraph) -> Self {
        WorldBlock {
            node_words: vec![0; graph.num_nodes()],
            edge_words: vec![0; graph.num_edges()],
            // Stamps start unequal to every epoch the block can reach,
            // so an edge_word() call before the first materialize()
            // hits the LaneSource::Empty panic instead of silently
            // serving an all-zero word.
            edge_epoch: vec![u32::MAX; graph.num_edges()],
            epoch: 0,
            lane_mask: 0,
            source: LaneSource::Empty,
            pending_edges: 0,
            usage: CoinUsage::default(),
        }
    }

    /// Starts a new block: flushes lazy-skip accounting and invalidates
    /// all cached edge words.
    fn begin_block(&mut self) {
        self.usage.edge_words_skipped += self.pending_edges;
        self.pending_edges = self.edge_words.len() as u64;
        // `u32::MAX` is reserved as the never-materialized sentinel, so
        // recycle one step early.
        if self.epoch >= u32::MAX - 1 {
            self.edge_epoch.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Materializes the worlds of samples `first_id .. first_id + lanes`
    /// (all within one 64-aligned block): sample `first_id + i` occupies
    /// lane `(first_id + i) % 64`, so partial chunks of the same block
    /// draw the same transposed words and merge exactly.
    ///
    /// Node words are synthesized now; edge words wait for
    /// [`edge_word`](Self::edge_word) (call
    /// [`force_edges`](Self::force_edges) for the eager equivalent).
    pub fn materialize(
        &mut self,
        graph: &UncertainGraph,
        coins: &CoinTable,
        seed: u64,
        first_id: u64,
        lanes: usize,
    ) {
        let lane0 = (first_id % LANES as u64) as usize;
        assert!(lanes >= 1 && lane0 + lanes <= LANES, "chunk crosses a block boundary");
        debug_assert!(coins.matches(graph), "stale coin table for this graph");
        debug_assert_eq!(coins.num_nodes(), graph.num_nodes(), "table/graph node mismatch");
        self.begin_block();
        let key = block_key(seed, first_id / LANES as u64);
        let mask = lane_mask(lanes) << lane0;
        for (v, word) in self.node_words.iter_mut().enumerate() {
            *word = bernoulli_word(
                coins.node_threshold(v),
                node_key(key, v),
                mask,
                &mut self.usage.words,
            );
        }
        self.source = LaneSource::Aligned { key };
        self.lane_mask = mask;
    }

    /// Materializes worlds for explicit sample ids (at most [`LANES`]):
    /// lane `j` is sample `ids[j]`. Used by adaptive passes (BSRBK,
    /// bottom-k scoring) that visit samples in hash order. Each lane
    /// projects one bit out of its home block's synthesis, so scattered
    /// blocks remain bit-identical to the aligned path and the oracle.
    pub fn materialize_ids(
        &mut self,
        graph: &UncertainGraph,
        coins: &CoinTable,
        seed: u64,
        ids: &[u64],
    ) {
        assert!(ids.len() <= LANES, "a block holds at most {LANES} lanes");
        debug_assert!(coins.matches(graph), "stale coin table for this graph");
        self.begin_block();
        let keys: Vec<(u64, u32)> = ids
            .iter()
            .map(|&id| (block_key(seed, id / LANES as u64), (id % LANES as u64) as u32))
            .collect();
        for (v, word) in self.node_words.iter_mut().enumerate() {
            let t = coins.node_threshold(v);
            let mut w = 0u64;
            if t != 0 {
                for (j, &(key, lane)) in keys.iter().enumerate() {
                    let coin =
                        bernoulli_bit(t, node_key(key, v), lane, false, &mut self.usage.words);
                    w |= (coin as u64) << j;
                }
            }
            *word = w;
        }
        self.lane_mask = lane_mask(keys.len());
        self.source = LaneSource::Scattered { keys };
    }

    /// The survival lane word of edge `e` in the current block,
    /// synthesized on first touch (frontier-lazy) and cached for the
    /// rest of the block.
    #[inline]
    pub fn edge_word(&mut self, coins: &CoinTable, e: usize) -> u64 {
        if self.edge_epoch[e] == self.epoch {
            self.edge_words[e]
        } else {
            self.materialize_edge(coins, e)
        }
    }

    fn materialize_edge(&mut self, coins: &CoinTable, e: usize) -> u64 {
        self.edge_epoch[e] = self.epoch;
        // Saturating: a `take_usage` mid-block already flushed the
        // remaining edges as skipped, so later touches must not
        // underflow the pending count.
        self.pending_edges = self.pending_edges.saturating_sub(1);
        self.usage.edge_words_materialized += 1;
        let t = coins.edge_threshold(e);
        let w = match &self.source {
            LaneSource::Aligned { key } => {
                bernoulli_word(t, edge_key(*key, e), self.lane_mask, &mut self.usage.words)
            }
            LaneSource::Scattered { keys } => {
                let mut w = 0u64;
                if t != 0 {
                    for (j, &(key, lane)) in keys.iter().enumerate() {
                        let coin =
                            bernoulli_bit(t, edge_key(key, e), lane, false, &mut self.usage.words);
                        w |= (coin as u64) << j;
                    }
                }
                w
            }
            LaneSource::Empty => panic!("edge_word before materialize"),
        };
        self.edge_words[e] = w;
        w
    }

    /// Eagerly synthesizes every edge word of the current block —
    /// bit-identical to what the lazy path would produce on touch. Used
    /// by the eager/lazy equivalence tests and the materialization-phase
    /// benchmarks.
    pub fn force_edges(&mut self, coins: &CoinTable) {
        for e in 0..self.edge_words.len() {
            let _ = self.edge_word(coins, e);
        }
    }

    /// Per-node self-default lane masks.
    #[inline]
    pub fn node_words(&self) -> &[u64] {
        &self.node_words
    }

    /// Self-default lane mask of node `v` (always materialized).
    #[inline]
    pub fn node_word(&self, v: usize) -> u64 {
        self.node_words[v]
    }

    /// Mask of materialized lanes.
    #[inline]
    pub fn lane_mask(&self) -> u64 {
        self.lane_mask
    }

    /// Number of materialized lanes.
    #[inline]
    pub fn lane_count(&self) -> usize {
        self.lane_mask.count_ones() as usize
    }

    /// Drains the accumulated materialization counters (including the
    /// lazy-skip credit of the current block, which is thereby closed
    /// out).
    pub fn take_usage(&mut self) -> CoinUsage {
        self.usage.edge_words_skipped += self.pending_edges;
        self.pending_edges = 0;
        std::mem::take(&mut self.usage)
    }

    /// Unpacks one lane into a [`PossibleWorld`] — a test/debug helper,
    /// bit-identical to sampling that world directly. Forces every edge
    /// word of the block.
    pub fn lane_world(&mut self, coins: &CoinTable, lane: usize) -> PossibleWorld {
        assert!(self.lane_mask >> lane & 1 == 1, "lane {lane} is not materialized");
        self.force_edges(coins);
        let bit = 1u64 << lane;
        PossibleWorld {
            self_default: self.node_words.iter().map(|w| w & bit != 0).collect(),
            edge_live: self.edge_words.iter().map(|w| w & bit != 0).collect(),
        }
    }
}

/// Reusable block BFS/propagation kernel. Holds all scratch buffers so
/// repeated blocks allocate nothing. Takes the block mutably: edge lane
/// words materialize lazily as the traversal first touches them.
#[derive(Debug, Clone)]
pub struct BlockKernel {
    // Forward pass: per-node "defaulted in lane j" masks.
    defaulted: Vec<u64>,
    // Reverse pass: per-node "reachable from the candidate in lane j
    // through surviving edges" masks, cleared via `touched`.
    reached: Vec<u64>,
    // Per-block positive/negative caches shared across candidates of one
    // block: lanes where a node is known to default / known safe.
    hit_known: Vec<u64>,
    safe_known: Vec<u64>,
    queue: Vec<u32>,
    in_queue: Vec<bool>,
    touched: Vec<u32>,
}

impl BlockKernel {
    /// Creates a kernel with scratch buffers sized for `graph`.
    pub fn new(graph: &UncertainGraph) -> Self {
        let n = graph.num_nodes();
        BlockKernel {
            defaulted: vec![0; n],
            reached: vec![0; n],
            hit_known: vec![0; n],
            safe_known: vec![0; n],
            queue: Vec::new(),
            in_queue: vec![false; n],
            touched: Vec::new(),
        }
    }

    /// Evaluates default reachability for all worlds of `block` at
    /// once: returns per-node lane masks where bit `j` says "node
    /// defaults in lane `j`'s world" (self-default or reachable from a
    /// self-defaulted node through surviving edges).
    ///
    /// One label-correcting BFS advances every lane per step: an edge
    /// transmits `defaulted[source] & edge_word(edge)` in a single AND,
    /// so the traversal cost is shared by all 64 worlds — and the edge
    /// word is only synthesized if the transmission could still change
    /// the target, so untouched edges draw no coins at all.
    pub fn forward_defaults(
        &mut self,
        graph: &UncertainGraph,
        coins: &CoinTable,
        block: &mut WorldBlock,
    ) -> &[u64] {
        debug_assert_eq!(block.node_words.len(), graph.num_nodes(), "block/graph node mismatch");
        debug_assert_eq!(block.edge_words.len(), graph.num_edges(), "block/graph edge mismatch");
        self.defaulted.copy_from_slice(block.node_words());
        self.queue.clear();
        for (v, &w) in self.defaulted.iter().enumerate() {
            if w != 0 {
                self.queue.push(v as u32);
                self.in_queue[v] = true;
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head] as usize;
            head += 1;
            self.in_queue[v] = false;
            let lanes = self.defaulted[v];
            let targets = graph.out_neighbors(NodeId(v as u32));
            for (e, &t) in graph.out_edge_range(NodeId(v as u32)).zip(targets) {
                let t = t as usize;
                // Lanes the transmission could still infect; if none,
                // the edge word is not even synthesized.
                let gate = lanes & !self.defaulted[t];
                if gate == 0 {
                    continue;
                }
                let new = gate & block.edge_word(coins, e);
                if new != 0 {
                    self.defaulted[t] |= new;
                    if !self.in_queue[t] {
                        self.in_queue[t] = true;
                        self.queue.push(t as u32);
                    }
                }
            }
        }
        &self.defaulted
    }

    /// Starts a new block for [`Self::reverse_hit_word`]: forgets the
    /// per-block positive/negative caches. Must be called after
    /// materializing a fresh block and before the first candidate query
    /// against it.
    pub fn begin_block(&mut self) {
        self.hit_known.iter_mut().for_each(|w| *w = 0);
        self.safe_known.iter_mut().for_each(|w| *w = 0);
    }

    /// Decides, for every lane of `block` at once, whether candidate `v`
    /// defaults in that lane's world: a reverse BFS over **in**-edges
    /// from `v` looks for a self-defaulted ancestor reachable through
    /// surviving edges, with per-lane frontiers. Returns the lane mask
    /// of worlds where `v` defaults. Edge words materialize lazily as
    /// the reverse frontier first crosses them, so the block's coin
    /// cost is `O(edges reached)`, not `O(m)`.
    ///
    /// Results are pure functions of the block's worlds, so the
    /// per-block caches filled by earlier candidates only skip work —
    /// they can never change an answer.
    pub fn reverse_hit_word(
        &mut self,
        graph: &UncertainGraph,
        coins: &CoinTable,
        block: &mut WorldBlock,
        v: NodeId,
    ) -> u64 {
        let want = block.lane_mask();
        let mut hit = self.hit_known[v.index()] & want;
        // Lanes still needing a verdict; shrinks as hits are found.
        let mut undecided = want & !hit & !self.safe_known[v.index()];
        if undecided != 0 {
            self.queue.clear();
            self.touched.clear();
            self.reached[v.index()] = undecided;
            self.touched.push(v.0);
            self.queue.push(v.0);
            self.in_queue[v.index()] = true;
            let mut head = 0;
            while head < self.queue.len() {
                let u = self.queue[head] as usize;
                head += 1;
                self.in_queue[u] = false;
                let active = self.reached[u] & undecided;
                if active == 0 {
                    continue;
                }
                // A self-defaulted (or known-defaulted) ancestor decides
                // its lanes immediately.
                let hits_here = active & (block.node_word(u) | self.hit_known[u]);
                if hits_here != 0 {
                    hit |= hits_here;
                    undecided &= !hits_here;
                    if undecided == 0 {
                        break;
                    }
                }
                // Known-safe lanes cannot contain a defaulted ancestor:
                // do not expand them.
                let expand = active & !hits_here & !self.safe_known[u];
                if expand == 0 {
                    continue;
                }
                let sources = graph.in_neighbors(NodeId(u as u32));
                for (&e, &s) in graph.in_edge_ids(NodeId(u as u32)).iter().zip(sources) {
                    let s = s as usize;
                    let gate = expand & !self.reached[s];
                    if gate == 0 {
                        continue;
                    }
                    let new = gate & block.edge_word(coins, e as usize);
                    if new != 0 {
                        if self.reached[s] == 0 {
                            self.touched.push(s as u32);
                        }
                        self.reached[s] |= new;
                        if !self.in_queue[s] {
                            self.in_queue[s] = true;
                            self.queue.push(s as u32);
                        }
                    }
                }
            }
            // Reset per-candidate scratch. `in_queue` may hold stale
            // `true` marks when the search broke early, so clear both.
            for &u in &self.touched {
                self.reached[u as usize] = 0;
                self.in_queue[u as usize] = false;
            }
        }
        // Record the verdicts: lanes that exhausted without a hit are
        // provably safe for this candidate within this block.
        self.hit_known[v.index()] |= hit;
        self.safe_known[v.index()] |= want & !hit;
        hit
    }

    /// [`Self::reverse_hit_word`] over a candidate list, writing one
    /// lane mask per candidate into `out` (cleared and refilled).
    /// Calls [`Self::begin_block`] internally.
    pub fn reverse_hits_into(
        &mut self,
        graph: &UncertainGraph,
        coins: &CoinTable,
        block: &mut WorldBlock,
        candidates: &[NodeId],
        out: &mut Vec<u64>,
    ) {
        self.begin_block();
        out.clear();
        for &v in candidates {
            let word = self.reverse_hit_word(graph, coins, block, v);
            out.push(word);
        }
    }
}

/// Splits a sample-id range into chunks that never cross a 64-aligned
/// block boundary — the unit the parallel driver partitions by and the
/// engine cache snapshots at.
pub fn block_chunks(range: std::ops::Range<u64>) -> impl Iterator<Item = std::ops::Range<u64>> {
    let end = range.end.max(range.start);
    let mut next = range.start;
    std::iter::from_fn(move || {
        if next >= end {
            return None;
        }
        let start = next;
        let boundary = (start / LANES as u64 + 1) * LANES as u64;
        next = boundary.min(end);
        Some(start..next)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn chain() -> UncertainGraph {
        from_parts(&[0.5, 0.0, 0.0], &[(0, 1, 0.5), (1, 2, 0.5)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    #[test]
    fn lanes_match_materialized_worlds_bitwise() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        block.materialize(&g, &coins, 42, 128, 64);
        assert_eq!(block.lane_mask(), u64::MAX);
        for j in [0usize, 1, 17, 63] {
            let expected = PossibleWorld::sample_indexed(&g, 42, 128 + j as u64);
            assert_eq!(block.lane_world(&coins, j), expected, "lane {j}");
        }
    }

    #[test]
    fn partial_blocks_mask_unused_lanes() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        block.materialize(&g, &coins, 7, 0, 5);
        assert_eq!(block.lane_mask(), 0b11111);
        assert_eq!(block.lane_count(), 5);
        block.force_edges(&coins);
        // High lanes read as all-zero coins.
        for w in block.node_words().iter().chain(&block.edge_words) {
            assert_eq!(w & !0b11111, 0);
        }
    }

    #[test]
    fn unaligned_chunks_share_their_block_words() {
        // Samples 70..75 are lanes 6..11 of block 1: the same transposed
        // words as a full materialization of that block, masked.
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut full = WorldBlock::new(&g);
        full.materialize(&g, &coins, 9, 64, 64);
        full.force_edges(&coins);
        let mut partial = WorldBlock::new(&g);
        partial.materialize(&g, &coins, 9, 70, 5);
        partial.force_edges(&coins);
        assert_eq!(partial.lane_mask(), 0b11111 << 6);
        for v in 0..g.num_nodes() {
            assert_eq!(partial.node_word(v), full.node_word(v) & (0b11111 << 6), "node {v}");
        }
        for e in 0..g.num_edges() {
            assert_eq!(partial.edge_words[e], full.edge_words[e] & (0b11111 << 6), "edge {e}");
        }
    }

    #[test]
    fn lazy_edges_match_eager_edges_bitwise() {
        let g = from_parts(
            &[0.4, 0.1, 0.2, 0.0, 0.3],
            &[(0, 1, 0.6), (1, 2, 0.5), (2, 0, 0.4), (1, 3, 0.7), (3, 4, 0.9)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let coins = CoinTable::new(&g);
        let mut eager = WorldBlock::new(&g);
        eager.materialize(&g, &coins, 5, 0, 64);
        eager.force_edges(&coins);
        let mut lazy = WorldBlock::new(&g);
        lazy.materialize(&g, &coins, 5, 0, 64);
        for e in [3usize, 0, 4, 1, 2, 3] {
            assert_eq!(lazy.edge_word(&coins, e), eager.edge_words[e], "edge {e}");
        }
    }

    #[test]
    fn usage_accounts_for_lazy_skips() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        block.materialize(&g, &coins, 1, 0, 64);
        let _ = block.edge_word(&coins, 0);
        let usage = block.take_usage();
        assert_eq!(usage.edge_words_materialized, 1);
        assert_eq!(usage.edge_words_skipped, 1);
        assert!(usage.words > 0);
        assert!((usage.lazy_skip_ratio() - 0.5).abs() < 1e-12);
        // Counters were drained.
        assert_eq!(block.take_usage(), CoinUsage::default());
        // Touching a fresh edge after a mid-block drain must not
        // underflow the pending count (the edge was already credited as
        // skipped by the drain).
        let _ = block.edge_word(&coins, 1);
        let after = block.take_usage();
        assert_eq!(after.edge_words_materialized, 1);
        assert_eq!(after.edge_words_skipped, 0);
    }

    #[test]
    fn forward_kernel_matches_scalar_world_evaluation() {
        let g = from_parts(
            &[0.4, 0.1, 0.2, 0.0, 0.3],
            &[(0, 1, 0.6), (1, 2, 0.5), (2, 0, 0.4), (1, 3, 0.7), (3, 4, 0.9)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        let mut kernel = BlockKernel::new(&g);
        block.materialize(&g, &coins, 9, 0, 64);
        let words = kernel.forward_defaults(&g, &coins, &mut block).to_vec();
        for j in 0..64 {
            let scalar = block.lane_world(&coins, j).defaulted_nodes(&g);
            for v in 0..g.num_nodes() {
                assert_eq!(words[v] >> j & 1 == 1, scalar[v], "lane {j}, node {v}");
            }
        }
    }

    #[test]
    fn reverse_kernel_matches_forward_kernel() {
        let g = from_parts(
            &[0.3, 0.2, 0.1, 0.4],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (0, 3, 0.25), (3, 0, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        let mut kernel = BlockKernel::new(&g);
        block.materialize(&g, &coins, 3, 64, 64);
        let forward = kernel.forward_defaults(&g, &coins, &mut block).to_vec();
        let candidates: Vec<NodeId> = g.nodes().collect();
        let mut hits = Vec::new();
        kernel.reverse_hits_into(&g, &coins, &mut block, &candidates, &mut hits);
        assert_eq!(hits, forward, "reverse and forward must agree on every lane");
        // Repeating candidates exercises the per-block caches.
        let repeated: Vec<NodeId> = candidates.iter().chain(candidates.iter()).copied().collect();
        let mut hits2 = Vec::new();
        kernel.reverse_hits_into(&g, &coins, &mut block, &repeated, &mut hits2);
        assert_eq!(&hits2[..4], &forward[..]);
        assert_eq!(&hits2[4..], &forward[..]);
    }

    #[test]
    fn kernel_reuse_is_stateless_across_blocks() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        let mut kernel = BlockKernel::new(&g);
        block.materialize(&g, &coins, 1, 0, 64);
        let first = kernel.forward_defaults(&g, &coins, &mut block).to_vec();
        block.materialize(&g, &coins, 1, 64, 64);
        let _ = kernel.forward_defaults(&g, &coins, &mut block);
        block.materialize(&g, &coins, 1, 0, 64);
        assert_eq!(kernel.forward_defaults(&g, &coins, &mut block), &first[..]);
    }

    #[test]
    fn block_chunks_align_to_64() {
        let chunks: Vec<_> = block_chunks(10..200).collect();
        assert_eq!(chunks, vec![10..64, 64..128, 128..192, 192..200]);
        assert_eq!(block_chunks(0..64).collect::<Vec<_>>(), vec![0..64]);
        assert_eq!(block_chunks(5..5).count(), 0);
        assert_eq!(block_chunks(64..66).collect::<Vec<_>>(), vec![64..66]);
    }

    #[test]
    fn lane_mask_helper() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(64), u64::MAX);
        assert_eq!(lane_mask(63), u64::MAX >> 1);
    }

    #[test]
    #[should_panic(expected = "edge_word before materialize")]
    fn edge_word_requires_a_materialized_block() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        let _ = block.edge_word(&coins, 0);
    }

    #[test]
    #[should_panic(expected = "at most 64 lanes")]
    fn materialize_ids_rejects_oversized_blocks() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        let ids: Vec<u64> = (0..65).collect();
        block.materialize_ids(&g, &coins, 1, &ids);
    }
}
