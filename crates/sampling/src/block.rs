//! Bit-parallel world blocks — the 64-lane possible-world kernel.
//!
//! A [`WorldBlock`] packs **64 possible worlds** into `u64` lane masks:
//! one word per node (bit `j` = "node self-defaulted in lane `j`'s
//! world") and one word per edge (bit `j` = "edge survived in lane `j`'s
//! world"). [`BlockKernel`] then advances *all 64 worlds per traversal
//! step* with bitwise AND/OR over the graph's CSR arrays — the classic
//! SIMD-within-a-register technique — so the reachability BFS that
//! dominated the scalar data path is amortized 64×.
//!
//! # The `(seed, 64·b + j)` stream contract
//!
//! Lane `j` of block `b` is **exactly** the possible world
//! [`PossibleWorld::sample_indexed(graph, seed, 64·b + j)`]: its coins
//! are drawn from the RNG stream [`Xoshiro256pp::for_sample`]`(seed,
//! 64·b + j)`, consumed in the canonical world order — all node
//! self-default coins in node-id order, then all edge survival coins in
//! canonical edge-id order. Every sampler in this crate (the block
//! kernel, the scalar [`ForwardSampler`](crate::ForwardSampler) and
//! [`ReverseSampler`](crate::ReverseSampler) references, and the
//! parallel drivers) evaluates deterministic functions of *that* world,
//! which is why block-kernel counts are **bit-identical** to the scalar
//! oracle for any sample budget, any lane count, and any thread count —
//! including budgets that are not multiples of 64, served through
//! partial lane masks.
//!
//! [`PossibleWorld::sample_indexed(graph, seed, 64·b + j)`]: PossibleWorld::sample_indexed

use crate::rng::Xoshiro256pp;
use crate::world::PossibleWorld;
use ugraph::{NodeId, UncertainGraph};

/// Number of possible worlds packed into one [`WorldBlock`]: the lane
/// width of the `u64` SIMD-within-a-register kernel.
pub const LANES: usize = 64;

/// All-lanes mask for a block holding `lanes` worlds (`lanes ≤ 64`).
#[inline]
pub fn lane_mask(lanes: usize) -> u64 {
    assert!(lanes <= LANES, "a block holds at most {LANES} lanes");
    if lanes == LANES {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// 64 possible worlds packed as per-node and per-edge `u64` lane masks.
///
/// Buffers are reusable: [`materialize`](Self::materialize) overwrites
/// them in place, so a sampling loop allocates once per run.
#[derive(Debug, Clone)]
pub struct WorldBlock {
    /// `node_words[v]` bit `j` — node `v` self-defaulted in lane `j`.
    node_words: Vec<u64>,
    /// `edge_words[e]` bit `j` — edge `e` (canonical id) survived in
    /// lane `j`.
    edge_words: Vec<u64>,
    /// Which lanes hold materialized worlds (low bits for partial
    /// blocks).
    lane_mask: u64,
    /// Per-lane RNG states of the block being materialized (scratch).
    rngs: Vec<Xoshiro256pp>,
}

impl WorldBlock {
    /// Creates an empty block with buffers sized for `graph`.
    pub fn new(graph: &UncertainGraph) -> Self {
        WorldBlock {
            node_words: vec![0; graph.num_nodes()],
            edge_words: vec![0; graph.num_edges()],
            lane_mask: 0,
            rngs: Vec::with_capacity(LANES),
        }
    }

    /// Materializes `lanes` consecutive worlds: lane `j` is sample
    /// `base_id + j`, drawn from the `(seed, base_id + j)` RNG stream in
    /// canonical world order (all node coins, then all edge coins).
    ///
    /// `lanes` may be less than [`LANES`] for a partial tail block; the
    /// unused high lanes read as all-zero and are excluded from
    /// [`Self::lane_mask`].
    pub fn materialize(&mut self, graph: &UncertainGraph, seed: u64, base_id: u64, lanes: usize) {
        assert!(lanes <= LANES, "a block holds at most {LANES} lanes");
        self.rngs.clear();
        self.rngs.extend((0..lanes).map(|j| Xoshiro256pp::for_sample(seed, base_id + j as u64)));
        self.draw_all(graph);
    }

    /// Materializes worlds for explicit sample ids (at most [`LANES`]):
    /// lane `j` is sample `ids[j]`. Used by adaptive passes (BSRBK,
    /// bottom-k scoring) that visit samples in hash order.
    pub fn materialize_ids(&mut self, graph: &UncertainGraph, seed: u64, ids: &[u64]) {
        assert!(ids.len() <= LANES, "a block holds at most {LANES} lanes");
        self.rngs.clear();
        self.rngs.extend(ids.iter().map(|&id| Xoshiro256pp::for_sample(seed, id)));
        self.draw_all(graph);
    }

    /// Draws every lane's coins. The item loop is outermost and the lane
    /// loop innermost: each lane still consumes *its own* stream in the
    /// canonical order (a stream only advances on its own draws), but
    /// each node/edge word is assembled in a register and written once,
    /// instead of 64 read-modify-write passes over the whole block.
    fn draw_all(&mut self, graph: &UncertainGraph) {
        let rngs = &mut self.rngs[..];
        for (v, word) in self.node_words.iter_mut().enumerate() {
            let p = graph.self_risk(NodeId(v as u32));
            let mut w = 0u64;
            for (j, rng) in rngs.iter_mut().enumerate() {
                w |= (rng.bernoulli(p) as u64) << j;
            }
            *word = w;
        }
        for (e, word) in self.edge_words.iter_mut().enumerate() {
            let p = graph.edge_prob(ugraph::EdgeId(e as u32));
            let mut w = 0u64;
            for (j, rng) in rngs.iter_mut().enumerate() {
                w |= (rng.bernoulli(p) as u64) << j;
            }
            *word = w;
        }
        self.lane_mask = lane_mask(rngs.len());
    }

    /// Per-node self-default lane masks.
    #[inline]
    pub fn node_words(&self) -> &[u64] {
        &self.node_words
    }

    /// Per-edge survival lane masks.
    #[inline]
    pub fn edge_words(&self) -> &[u64] {
        &self.edge_words
    }

    /// Mask of materialized lanes.
    #[inline]
    pub fn lane_mask(&self) -> u64 {
        self.lane_mask
    }

    /// Number of materialized lanes.
    #[inline]
    pub fn lane_count(&self) -> usize {
        self.lane_mask.count_ones() as usize
    }

    /// Unpacks one lane into a [`PossibleWorld`] — a test/debug helper,
    /// bit-identical to sampling that world directly.
    pub fn lane_world(&self, lane: usize) -> PossibleWorld {
        assert!(self.lane_mask >> lane & 1 == 1, "lane {lane} is not materialized");
        let bit = 1u64 << lane;
        PossibleWorld {
            self_default: self.node_words.iter().map(|w| w & bit != 0).collect(),
            edge_live: self.edge_words.iter().map(|w| w & bit != 0).collect(),
        }
    }
}

/// Reusable block BFS/propagation kernel. Holds all scratch buffers so
/// repeated blocks allocate nothing.
#[derive(Debug, Clone)]
pub struct BlockKernel {
    // Forward pass: per-node "defaulted in lane j" masks.
    defaulted: Vec<u64>,
    // Reverse pass: per-node "reachable from the candidate in lane j
    // through surviving edges" masks, cleared via `touched`.
    reached: Vec<u64>,
    // Per-block positive/negative caches shared across candidates of one
    // block: lanes where a node is known to default / known safe.
    hit_known: Vec<u64>,
    safe_known: Vec<u64>,
    queue: Vec<u32>,
    in_queue: Vec<bool>,
    touched: Vec<u32>,
}

impl BlockKernel {
    /// Creates a kernel with scratch buffers sized for `graph`.
    pub fn new(graph: &UncertainGraph) -> Self {
        let n = graph.num_nodes();
        BlockKernel {
            defaulted: vec![0; n],
            reached: vec![0; n],
            hit_known: vec![0; n],
            safe_known: vec![0; n],
            queue: Vec::new(),
            in_queue: vec![false; n],
            touched: Vec::new(),
        }
    }

    /// Evaluates default reachability for all 64 worlds of `block` at
    /// once: returns per-node lane masks where bit `j` says "node
    /// defaults in lane `j`'s world" (self-default or reachable from a
    /// self-defaulted node through surviving edges).
    ///
    /// One label-correcting BFS advances every lane per step: an edge
    /// transmits `defaulted[source] & edge_words[edge]` in a single AND,
    /// so the traversal cost is shared by all 64 worlds.
    pub fn forward_defaults(&mut self, graph: &UncertainGraph, block: &WorldBlock) -> &[u64] {
        let node_words = block.node_words();
        let edge_words = block.edge_words();
        debug_assert_eq!(node_words.len(), graph.num_nodes(), "block/graph node mismatch");
        debug_assert_eq!(edge_words.len(), graph.num_edges(), "block/graph edge mismatch");
        self.defaulted.copy_from_slice(node_words);
        self.queue.clear();
        for (v, &w) in self.defaulted.iter().enumerate() {
            if w != 0 {
                self.queue.push(v as u32);
                self.in_queue[v] = true;
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head] as usize;
            head += 1;
            self.in_queue[v] = false;
            let lanes = self.defaulted[v];
            let targets = graph.out_neighbors(NodeId(v as u32));
            for (e, &t) in graph.out_edge_range(NodeId(v as u32)).zip(targets) {
                let t = t as usize;
                let new = lanes & edge_words[e] & !self.defaulted[t];
                if new != 0 {
                    self.defaulted[t] |= new;
                    if !self.in_queue[t] {
                        self.in_queue[t] = true;
                        self.queue.push(t as u32);
                    }
                }
            }
        }
        &self.defaulted
    }

    /// Starts a new block for [`Self::reverse_hit_word`]: forgets the
    /// per-block positive/negative caches. Must be called after
    /// materializing a fresh block and before the first candidate query
    /// against it.
    pub fn begin_block(&mut self) {
        self.hit_known.iter_mut().for_each(|w| *w = 0);
        self.safe_known.iter_mut().for_each(|w| *w = 0);
    }

    /// Decides, for every lane of `block` at once, whether candidate `v`
    /// defaults in that lane's world: a reverse BFS over **in**-edges
    /// from `v` looks for a self-defaulted ancestor reachable through
    /// surviving edges, with per-lane frontiers. Returns the lane mask
    /// of worlds where `v` defaults.
    ///
    /// Results are pure functions of the block's worlds, so the
    /// per-block caches filled by earlier candidates only skip work —
    /// they can never change an answer.
    pub fn reverse_hit_word(
        &mut self,
        graph: &UncertainGraph,
        block: &WorldBlock,
        v: NodeId,
    ) -> u64 {
        let node_words = block.node_words();
        let edge_words = block.edge_words();
        let want = block.lane_mask();
        let mut hit = self.hit_known[v.index()] & want;
        // Lanes still needing a verdict; shrinks as hits are found.
        let mut undecided = want & !hit & !self.safe_known[v.index()];
        if undecided != 0 {
            self.queue.clear();
            self.touched.clear();
            self.reached[v.index()] = undecided;
            self.touched.push(v.0);
            self.queue.push(v.0);
            self.in_queue[v.index()] = true;
            let mut head = 0;
            while head < self.queue.len() {
                let u = self.queue[head] as usize;
                head += 1;
                self.in_queue[u] = false;
                let active = self.reached[u] & undecided;
                if active == 0 {
                    continue;
                }
                // A self-defaulted (or known-defaulted) ancestor decides
                // its lanes immediately.
                let hits_here = active & (node_words[u] | self.hit_known[u]);
                if hits_here != 0 {
                    hit |= hits_here;
                    undecided &= !hits_here;
                    if undecided == 0 {
                        break;
                    }
                }
                // Known-safe lanes cannot contain a defaulted ancestor:
                // do not expand them.
                let expand = active & !hits_here & !self.safe_known[u];
                if expand == 0 {
                    continue;
                }
                let sources = graph.in_neighbors(NodeId(u as u32));
                for (&e, &s) in graph.in_edge_ids(NodeId(u as u32)).iter().zip(sources) {
                    let s = s as usize;
                    let new = expand & edge_words[e as usize] & !self.reached[s];
                    if new != 0 {
                        if self.reached[s] == 0 {
                            self.touched.push(s as u32);
                        }
                        self.reached[s] |= new;
                        if !self.in_queue[s] {
                            self.in_queue[s] = true;
                            self.queue.push(s as u32);
                        }
                    }
                }
            }
            // Reset per-candidate scratch. `in_queue` may hold stale
            // `true` marks when the search broke early, so clear both.
            for &u in &self.touched {
                self.reached[u as usize] = 0;
                self.in_queue[u as usize] = false;
            }
        }
        // Record the verdicts: lanes that exhausted without a hit are
        // provably safe for this candidate within this block.
        self.hit_known[v.index()] |= hit;
        self.safe_known[v.index()] |= want & !hit;
        hit
    }

    /// [`Self::reverse_hit_word`] over a candidate list, writing one
    /// lane mask per candidate into `out` (cleared and refilled).
    /// Calls [`Self::begin_block`] internally.
    pub fn reverse_hits_into(
        &mut self,
        graph: &UncertainGraph,
        block: &WorldBlock,
        candidates: &[NodeId],
        out: &mut Vec<u64>,
    ) {
        self.begin_block();
        out.clear();
        for &v in candidates {
            let word = self.reverse_hit_word(graph, block, v);
            out.push(word);
        }
    }
}

/// Splits a sample-id range into chunks that never cross a 64-aligned
/// block boundary — the unit the parallel driver partitions by and the
/// engine cache snapshots at.
pub fn block_chunks(range: std::ops::Range<u64>) -> impl Iterator<Item = std::ops::Range<u64>> {
    let end = range.end.max(range.start);
    let mut next = range.start;
    std::iter::from_fn(move || {
        if next >= end {
            return None;
        }
        let start = next;
        let boundary = (start / LANES as u64 + 1) * LANES as u64;
        next = boundary.min(end);
        Some(start..next)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn chain() -> UncertainGraph {
        from_parts(&[0.5, 0.0, 0.0], &[(0, 1, 0.5), (1, 2, 0.5)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    #[test]
    fn lanes_match_materialized_worlds_bitwise() {
        let g = chain();
        let mut block = WorldBlock::new(&g);
        block.materialize(&g, 42, 128, 64);
        assert_eq!(block.lane_mask(), u64::MAX);
        for j in [0usize, 1, 17, 63] {
            let expected = PossibleWorld::sample_indexed(&g, 42, 128 + j as u64);
            assert_eq!(block.lane_world(j), expected, "lane {j}");
        }
    }

    #[test]
    fn partial_blocks_mask_unused_lanes() {
        let g = chain();
        let mut block = WorldBlock::new(&g);
        block.materialize(&g, 7, 0, 5);
        assert_eq!(block.lane_mask(), 0b11111);
        assert_eq!(block.lane_count(), 5);
        // High lanes read as all-zero coins.
        for w in block.node_words().iter().chain(block.edge_words()) {
            assert_eq!(w & !0b11111, 0);
        }
    }

    #[test]
    fn forward_kernel_matches_scalar_world_evaluation() {
        let g = from_parts(
            &[0.4, 0.1, 0.2, 0.0, 0.3],
            &[(0, 1, 0.6), (1, 2, 0.5), (2, 0, 0.4), (1, 3, 0.7), (3, 4, 0.9)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let mut block = WorldBlock::new(&g);
        let mut kernel = BlockKernel::new(&g);
        block.materialize(&g, 9, 0, 64);
        let words = kernel.forward_defaults(&g, &block).to_vec();
        for j in 0..64 {
            let scalar = block.lane_world(j).defaulted_nodes(&g);
            for v in 0..g.num_nodes() {
                assert_eq!(words[v] >> j & 1 == 1, scalar[v], "lane {j}, node {v}");
            }
        }
    }

    #[test]
    fn reverse_kernel_matches_forward_kernel() {
        let g = from_parts(
            &[0.3, 0.2, 0.1, 0.4],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (0, 3, 0.25), (3, 0, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let mut block = WorldBlock::new(&g);
        let mut kernel = BlockKernel::new(&g);
        block.materialize(&g, 3, 64, 64);
        let forward = kernel.forward_defaults(&g, &block).to_vec();
        let candidates: Vec<NodeId> = g.nodes().collect();
        let mut hits = Vec::new();
        kernel.reverse_hits_into(&g, &block, &candidates, &mut hits);
        assert_eq!(hits, forward, "reverse and forward must agree on every lane");
        // Repeating candidates exercises the per-block caches.
        let repeated: Vec<NodeId> = candidates.iter().chain(candidates.iter()).copied().collect();
        let mut hits2 = Vec::new();
        kernel.reverse_hits_into(&g, &block, &repeated, &mut hits2);
        assert_eq!(&hits2[..4], &forward[..]);
        assert_eq!(&hits2[4..], &forward[..]);
    }

    #[test]
    fn kernel_reuse_is_stateless_across_blocks() {
        let g = chain();
        let mut block = WorldBlock::new(&g);
        let mut kernel = BlockKernel::new(&g);
        block.materialize(&g, 1, 0, 64);
        let first = kernel.forward_defaults(&g, &block).to_vec();
        block.materialize(&g, 1, 64, 64);
        let _ = kernel.forward_defaults(&g, &block);
        block.materialize(&g, 1, 0, 64);
        assert_eq!(kernel.forward_defaults(&g, &block), &first[..]);
    }

    #[test]
    fn block_chunks_align_to_64() {
        let chunks: Vec<_> = block_chunks(10..200).collect();
        assert_eq!(chunks, vec![10..64, 64..128, 128..192, 192..200]);
        assert_eq!(block_chunks(0..64).collect::<Vec<_>>(), vec![0..64]);
        assert_eq!(block_chunks(5..5).count(), 0);
        assert_eq!(block_chunks(64..66).collect::<Vec<_>>(), vec![64..66]);
    }

    #[test]
    fn lane_mask_helper() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(64), u64::MAX);
        assert_eq!(lane_mask(63), u64::MAX >> 1);
    }

    #[test]
    #[should_panic(expected = "at most 64 lanes")]
    fn materialize_ids_rejects_oversized_blocks() {
        let g = chain();
        let mut block = WorldBlock::new(&g);
        let ids: Vec<u64> = (0..65).collect();
        block.materialize_ids(&g, 1, &ids);
    }
}
