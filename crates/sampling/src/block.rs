//! Bit-parallel world superblocks — the W×64-lane possible-world kernel.
//!
//! A [`SuperBlock`] packs **`W · 64` possible worlds** — `W` consecutive
//! 64-lane *home blocks* — into `[u64; W]` word-vectors stored
//! transposed-contiguously: one word-vector per node (bit `j` of word
//! `w` = "node self-defaulted in lane `j` of home block `w`") and one
//! per edge. [`SuperKernel`] then advances *all `W · 64` worlds per
//! traversal step*: an edge transmission is `W` bitwise AND/ORs over
//! adjacent words — a shape the compiler autovectorizes to SSE/AVX/NEON
//! — so the structural work that dominated the 64-lane path (CSR index
//! arithmetic, frontier queue pushes, epoch checks) is amortized over
//! `W` times as many worlds.
//!
//! [`WorldBlock`] and [`BlockKernel`] are the `W = 1` aliases — the
//! classic 64-lane block path, still used by the scattered-lane adaptive
//! passes (BSRBK, bottom-k scoring) whose hash-order replay is
//! inherently single-word. Runtime width selection lives in
//! [`BlockWords`](crate::BlockWords).
//!
//! Materialization is bit-parallel too: lane words are synthesized
//! transposed, straight from the stateless `(seed, block, item, level)`
//! generator of [`crate::coins`], **per home block** — a superblock
//! holds `W` independent home-block syntheses side by side, which is
//! what keeps counts bit-identical across widths. Edge word-vectors are
//! **frontier-lazy**: [`SuperBlock::edge_word`] synthesizes all `W`
//! words of an edge the first time a traversal touches it, so a
//! superblock costs `O(W·n + W·(edges reached))` coins instead of
//! `O(W·(n + m))`.
//!
//! # The `(seed, block, lane)` stream contract
//!
//! Sample `i` occupies lane `i % 64` of home block `i / 64` — word
//! `(i / 64) % W` of superblock `i / (W · 64)` — and its world is
//! **exactly** [`PossibleWorld::sample_indexed(graph, seed, i)`]: every
//! coin is a fixed bit of the stateless synthesis keyed by
//! `(seed, i / 64, item)`, independent of the superblock width it is
//! evaluated under — see [`crate::coins`] for the generator. Every
//! sampler in this crate (the superblock kernels at every width, the
//! scalar [`ForwardSampler`](crate::ForwardSampler) and
//! [`ReverseSampler`](crate::ReverseSampler) references, and the
//! parallel drivers) evaluates deterministic functions of *those*
//! worlds, which is why counts are **bit-identical** across widths,
//! lazy and eager materialization, block and scalar evaluation, any
//! sample budget (including budgets that are not multiples of `W · 64`,
//! served through per-word lane masks over the partial superblock), and
//! any thread count.
//!
//! [`PossibleWorld::sample_indexed(graph, seed, i)`]: PossibleWorld::sample_indexed

use crate::coins::{bernoulli_bit, bernoulli_words, block_key, edge_key, node_key};
use crate::coins::{CoinTable, CoinUsage};
use crate::direction::Direction;
use crate::touch::TouchedEdges;
use crate::world::PossibleWorld;
use ugraph::{NodeId, UncertainGraph};

/// Number of possible worlds packed into one `u64` lane word: the lane
/// width of the SIMD-within-a-register kernel.
pub const LANES: usize = 64;

/// All-lanes mask for a word holding `lanes` worlds (`lanes ≤ 64`).
#[inline]
pub fn lane_mask(lanes: usize) -> u64 {
    assert!(lanes <= LANES, "a block holds at most {LANES} lanes");
    if lanes == LANES {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// The word-vector of item `i` in a flat stride-`W` slice.
#[inline(always)]
fn wv<const W: usize>(words: &[u64], i: usize) -> &[u64; W] {
    // xlint: allow(panic-hygiene) — the slice is exactly `W` words by
    // construction of the index range, so the conversion is infallible.
    (&words[i * W..i * W + W]).try_into().expect("stride-W word-vector")
}

/// Mutable [`wv`].
#[inline(always)]
fn wv_mut<const W: usize>(words: &mut [u64], i: usize) -> &mut [u64; W] {
    // xlint: allow(panic-hygiene) — same exact-length slice invariant
    // as `wv`.
    (&mut words[i * W..i * W + W]).try_into().expect("stride-W word-vector")
}

/// Per-word lane masks of the sample chunk `first_id .. first_id + lanes`
/// within its `W`-word superblock: word `w` selects the chunk's samples
/// that live in home block `superblock · W + w`. Uncovered home blocks
/// get an all-zero mask (and draw no coins at all).
fn word_masks<const W: usize>(first_id: u64, lanes: usize) -> [u64; W] {
    let span = (W * LANES) as u64;
    let base = first_id / span * span;
    let (lo, hi) = (first_id, first_id + lanes as u64);
    let mut masks = [0u64; W];
    for (w, mask) in masks.iter_mut().enumerate() {
        let word_start = base + (w * LANES) as u64;
        let s = lo.max(word_start);
        let e = hi.min(word_start + LANES as u64);
        if s < e {
            *mask = lane_mask((e - s) as usize) << (s - word_start);
        }
    }
    masks
}

/// Where the current superblock's lanes draw their coins from.
#[derive(Debug, Clone)]
enum LaneSource<const W: usize> {
    /// No superblock materialized yet.
    Empty,
    /// Word `w` holds the 64 consecutive samples of home block
    /// `superblock · W + w`: coins come from transposed 64-lane
    /// synthesis under one block key per word.
    Aligned { keys: [u64; W] },
    /// Lane `j` is the arbitrary sample `ids[j]` (BSRBK hash order):
    /// each lane projects its own home block's synthesis, one bit at a
    /// time. Only built at `W = 1`.
    Scattered { keys: Vec<(u64, u32)> },
}

/// `W · 64` possible worlds packed as per-node and per-edge `[u64; W]`
/// word-vectors (stored transposed-contiguously in flat stride-`W`
/// buffers).
///
/// Node word-vectors are synthesized eagerly at
/// [`materialize`](Self::materialize) time (the forward kernel needs
/// every node's seeds); edge word-vectors are **frontier-lazy** —
/// synthesized by [`edge_word`](Self::edge_word) on first touch and
/// cached for the rest of the superblock via epoch stamps, so untouched
/// edges cost nothing.
///
/// Buffers are reusable: materialization overwrites them in place, so a
/// sampling loop allocates once per run. [`WorldBlock`] is the `W = 1`
/// alias.
#[derive(Debug, Clone)]
pub struct SuperBlock<const W: usize> {
    /// `node_words[v·W + w]` bit `j` — node `v` self-defaulted in lane
    /// `j` of home block `w`.
    node_words: Vec<u64>,
    /// `edge_words[e·W + w]` bit `j` — edge `e` (canonical id) survived
    /// in lane `j` of home block `w`. Valid only where
    /// `edge_epoch[e] == epoch`.
    edge_words: Vec<u64>,
    /// Lazy-materialization stamps: edge `e`'s word-vector belongs to
    /// the current superblock iff `edge_epoch[e] == epoch`.
    edge_epoch: Vec<u32>,
    epoch: u32,
    /// Which lanes of which words hold materialized worlds.
    lane_masks: [u64; W],
    /// Words of `lane_masks` that are non-zero — the per-edge lazy-skip
    /// accounting unit, so partial superblocks are not over-credited.
    covered_words: u64,
    source: LaneSource<W>,
    /// Edge words not yet materialized in the current superblock
    /// (flushed into `usage.edge_words_skipped` when the next superblock
    /// begins).
    pending_edge_words: u64,
    usage: CoinUsage,
    /// Every edge whose survival words this block ever synthesized, in
    /// any superblock — the revalidation ledger: counts are independent
    /// of every unmarked edge's coin (see [`crate::touch`]).
    touched: TouchedEdges,
}

/// The classic 64-lane world block — a [`SuperBlock`] of width 1.
pub type WorldBlock = SuperBlock<1>;

impl<const W: usize> SuperBlock<W> {
    /// Creates an empty superblock with buffers sized for `graph`.
    pub fn new(graph: &UncertainGraph) -> Self {
        assert!(W >= 1 && W <= crate::width::MAX_BLOCK_WORDS && W.is_power_of_two());
        SuperBlock {
            node_words: vec![0; graph.num_nodes() * W],
            edge_words: vec![0; graph.num_edges() * W],
            // Stamps start unequal to every epoch the block can reach,
            // so an edge_word() call before the first materialize()
            // hits the LaneSource::Empty panic instead of silently
            // serving an all-zero word.
            edge_epoch: vec![u32::MAX; graph.num_edges()],
            epoch: 0,
            lane_masks: [0; W],
            covered_words: 0,
            source: LaneSource::Empty,
            pending_edge_words: 0,
            usage: CoinUsage::default(),
            touched: TouchedEdges::new(graph.num_edges()),
        }
    }

    /// Starts a new superblock: flushes lazy-skip accounting and
    /// invalidates all cached edge word-vectors.
    fn begin_block(&mut self, covered_words: u64) {
        self.usage.edge_words_skipped += self.pending_edge_words;
        self.covered_words = covered_words;
        self.pending_edge_words = self.edge_epoch.len() as u64 * covered_words;
        self.usage.superblocks += 1;
        // `u32::MAX` is reserved as the never-materialized sentinel, so
        // recycle one step early.
        if self.epoch >= u32::MAX - 1 {
            self.edge_epoch.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Materializes the worlds of samples `first_id .. first_id + lanes`
    /// (all within one `W·64`-aligned superblock): sample `first_id + i`
    /// occupies lane `(first_id + i) % 64` of word
    /// `(first_id + i) / 64 % W`, so partial chunks of the same
    /// superblock draw the same transposed words and merge exactly —
    /// and the same lane words the width-1 path would synthesize for
    /// each covered home block, which is what keeps every width
    /// bit-identical.
    ///
    /// Node word-vectors are synthesized now; edge word-vectors wait for
    /// [`edge_word`](Self::edge_word) (call
    /// [`force_edges`](Self::force_edges) for the eager equivalent).
    pub fn materialize(
        &mut self,
        graph: &UncertainGraph,
        coins: &CoinTable,
        seed: u64,
        first_id: u64,
        lanes: usize,
    ) {
        let span = (W * LANES) as u64;
        assert!(
            lanes >= 1 && first_id % span + lanes as u64 <= span,
            "chunk crosses a superblock boundary"
        );
        debug_assert!(coins.matches(graph), "stale coin table for this graph");
        debug_assert_eq!(coins.num_nodes(), graph.num_nodes(), "table/graph node mismatch");
        let superblock = first_id / span;
        let mut keys = [0u64; W];
        for (w, key) in keys.iter_mut().enumerate() {
            *key = block_key(seed, superblock * W as u64 + w as u64);
        }
        let masks = word_masks::<W>(first_id, lanes);
        self.begin_block(masks.iter().filter(|&&m| m != 0).count() as u64);
        for (v, out) in self.node_words.chunks_exact_mut(W).enumerate() {
            let t = coins.node_threshold(v);
            let mut item_keys = [0u64; W];
            for w in 0..W {
                item_keys[w] = node_key(keys[w], v);
            }
            let vec = bernoulli_words::<W>(t, &item_keys, &masks, &mut self.usage.words);
            out.copy_from_slice(&vec);
        }
        self.source = LaneSource::Aligned { keys };
        self.lane_masks = masks;
    }

    /// The survival word-vector of edge `e` in the current superblock,
    /// synthesized on first touch (frontier-lazy, all `W` words at once)
    /// and cached for the rest of the superblock.
    #[inline]
    pub fn edge_word(&mut self, coins: &CoinTable, e: usize) -> [u64; W] {
        if self.edge_epoch[e] == self.epoch {
            *wv::<W>(&self.edge_words, e)
        } else {
            self.materialize_edge(coins, e)
        }
    }

    fn materialize_edge(&mut self, coins: &CoinTable, e: usize) -> [u64; W] {
        self.edge_epoch[e] = self.epoch;
        self.touched.mark(e);
        // Saturating: a `take_usage` mid-block already flushed the
        // remaining edge words as skipped, so later touches must not
        // underflow the pending count.
        self.pending_edge_words = self.pending_edge_words.saturating_sub(self.covered_words);
        self.usage.edge_words_materialized += self.covered_words;
        let t = coins.edge_threshold(e);
        let mut vec = [0u64; W];
        match &self.source {
            LaneSource::Aligned { keys } => {
                let mut item_keys = [0u64; W];
                for w in 0..W {
                    item_keys[w] = edge_key(keys[w], e);
                }
                vec = bernoulli_words::<W>(t, &item_keys, &self.lane_masks, &mut self.usage.words);
            }
            LaneSource::Scattered { keys } => {
                let mut word = 0u64;
                if t != 0 {
                    for (j, &(key, lane)) in keys.iter().enumerate() {
                        let coin =
                            bernoulli_bit(t, edge_key(key, e), lane, false, &mut self.usage.words);
                        word |= (coin as u64) << j;
                    }
                }
                vec[0] = word;
            }
            LaneSource::Empty => panic!("edge_word before materialize"),
        }
        wv_mut::<W>(&mut self.edge_words, e).copy_from_slice(&vec);
        vec
    }

    /// Eagerly synthesizes every edge word-vector of the current
    /// superblock — bit-identical to what the lazy path would produce on
    /// touch. Used by the eager/lazy equivalence tests and the
    /// materialization-phase benchmarks.
    pub fn force_edges(&mut self, coins: &CoinTable) {
        for e in 0..self.edge_epoch.len() {
            let _ = self.edge_word(coins, e);
        }
    }

    /// Per-node self-default word-vectors as a flat stride-`W` slice:
    /// node `v`'s words are `node_words()[v·W .. v·W + W]`. At `W = 1`
    /// this is the classic one-word-per-node layout.
    #[inline]
    pub fn node_words(&self) -> &[u64] {
        &self.node_words
    }

    /// Self-default word-vector of node `v` (always materialized).
    #[inline]
    pub fn node_word_vec(&self, v: usize) -> &[u64; W] {
        wv::<W>(&self.node_words, v)
    }

    /// Per-word masks of materialized lanes. Words whose mask is zero
    /// hold no worlds (partial superblocks at the tail of a budget, or
    /// the head of a cache extension resuming mid-superblock).
    #[inline]
    pub fn lane_masks(&self) -> &[u64; W] {
        &self.lane_masks
    }

    /// Number of materialized lanes across all words.
    #[inline]
    pub fn lane_count(&self) -> usize {
        self.lane_masks.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Drains the accumulated materialization counters (including the
    /// lazy-skip credit of the current superblock, which is thereby
    /// closed out).
    pub fn take_usage(&mut self) -> CoinUsage {
        self.usage.edge_words_skipped += self.pending_edge_words;
        self.pending_edge_words = 0;
        std::mem::take(&mut self.usage)
    }

    /// Every edge this block has ever materialized a survival word for
    /// (across all superblocks since construction) — the revalidation
    /// ledger consumed by delta-aware caches.
    pub fn touched_edges(&self) -> &TouchedEdges {
        &self.touched
    }

    /// Unpacks one lane (`lane < W · 64`, indexing the superblock's
    /// worlds in sample order) into a [`PossibleWorld`] — a test/debug
    /// helper, bit-identical to sampling that world directly. Forces
    /// every edge word of the superblock.
    pub fn lane_world(&mut self, coins: &CoinTable, lane: usize) -> PossibleWorld {
        let (word, bit_index) = (lane / LANES, lane % LANES);
        assert!(
            word < W && self.lane_masks[word] >> bit_index & 1 == 1,
            "lane {lane} is not materialized"
        );
        self.force_edges(coins);
        let bit = 1u64 << bit_index;
        PossibleWorld {
            self_default: self
                .node_words
                .chunks_exact(W)
                .map(|words| words[word] & bit != 0)
                .collect(),
            edge_live: self
                .edge_words
                .chunks_exact(W)
                .map(|words| words[word] & bit != 0)
                .collect(),
        }
    }
}

impl WorldBlock {
    /// Materializes worlds for explicit sample ids (at most [`LANES`]):
    /// lane `j` is sample `ids[j]`. Used by adaptive passes (BSRBK,
    /// bottom-k scoring) that visit samples in hash order. Each lane
    /// projects one bit out of its home block's synthesis, so scattered
    /// blocks remain bit-identical to the aligned path and the oracle.
    /// Scattered replay is inherently single-word, so this only exists
    /// at `W = 1`.
    pub fn materialize_ids(
        &mut self,
        graph: &UncertainGraph,
        coins: &CoinTable,
        seed: u64,
        ids: &[u64],
    ) {
        assert!(ids.len() <= LANES, "a block holds at most {LANES} lanes");
        debug_assert!(coins.matches(graph), "stale coin table for this graph");
        self.begin_block(1);
        let keys: Vec<(u64, u32)> = ids
            .iter()
            .map(|&id| (block_key(seed, id / LANES as u64), (id % LANES as u64) as u32))
            .collect();
        for (v, word) in self.node_words.iter_mut().enumerate() {
            let t = coins.node_threshold(v);
            let mut w = 0u64;
            if t != 0 {
                for (j, &(key, lane)) in keys.iter().enumerate() {
                    let coin =
                        bernoulli_bit(t, node_key(key, v), lane, false, &mut self.usage.words);
                    w |= (coin as u64) << j;
                }
            }
            *word = w;
        }
        self.lane_masks = [lane_mask(keys.len())];
        self.source = LaneSource::Scattered { keys };
    }

    /// Mask of materialized lanes — the single word of a width-1 block.
    #[inline]
    pub fn lane_mask(&self) -> u64 {
        self.lane_masks[0]
    }

    /// Self-default lane mask of node `v` (always materialized).
    #[inline]
    pub fn node_word(&self, v: usize) -> u64 {
        self.node_words[v]
    }
}

/// Reusable superblock BFS/propagation kernel. Holds all scratch buffers
/// (flat stride-`W`, like [`SuperBlock`]) so repeated superblocks
/// allocate nothing. Takes the superblock mutably: edge word-vectors
/// materialize lazily as the traversal first touches them.
/// [`BlockKernel`] is the `W = 1` alias.
#[derive(Debug, Clone)]
pub struct SuperKernel<const W: usize> {
    // Forward pass: per-node "defaulted in lane j of word w" vectors.
    defaulted: Vec<u64>,
    // Reverse pass: per-node "reachable from the candidate through
    // surviving edges" vectors, cleared via `touched`.
    reached: Vec<u64>,
    // Per-superblock positive/negative caches shared across candidates:
    // lanes where a node is known to default / known safe.
    hit_known: Vec<u64>,
    safe_known: Vec<u64>,
    queue: Vec<u32>,
    // Next-step frontier of the level-synchronized forward traversal.
    next: Vec<u32>,
    in_queue: Vec<bool>,
    touched: Vec<u32>,
    // Running popcount of `defaulted` across the current forward pass —
    // the live-lane density signal of the Auto direction switch, kept
    // incrementally (one popcount per newly-set word) so reading it per
    // step is free.
    live_lanes: u64,
}

/// The classic 64-lane block kernel — a [`SuperKernel`] of width 1.
pub type BlockKernel = SuperKernel<1>;

impl<const W: usize> SuperKernel<W> {
    /// Creates a kernel with scratch buffers sized for `graph`.
    pub fn new(graph: &UncertainGraph) -> Self {
        let n = graph.num_nodes();
        SuperKernel {
            defaulted: vec![0; n * W],
            reached: vec![0; n * W],
            hit_known: vec![0; n * W],
            safe_known: vec![0; n * W],
            queue: Vec::new(),
            next: Vec::new(),
            in_queue: vec![false; n],
            touched: Vec::new(),
            live_lanes: 0,
        }
    }

    /// Evaluates default reachability for all worlds of `block` at once:
    /// returns per-node word-vectors (flat stride-`W`, node `v` at
    /// `result[v·W .. v·W + W]`) where bit `j` of word `w` says "node
    /// defaults in lane `j` of home block `w`" (self-default or
    /// reachable from a self-defaulted node through surviving edges).
    ///
    /// A level-synchronized frontier fixpoint advances every lane of
    /// every word per step: an edge transmits
    /// `defaulted[source] & edge_word(edge)` as `W` adjacent ANDs, so
    /// the traversal cost is shared by all `W·64` worlds — and the edge
    /// word-vector is only synthesized if the transmission could still
    /// change the target, so untouched edges draw no coins at all.
    /// Runs [`Direction::Auto`]: each step pushes or pulls on measured
    /// frontier occupancy (see [`Self::forward_defaults_directed`]).
    pub fn forward_defaults(
        &mut self,
        graph: &UncertainGraph,
        coins: &CoinTable,
        block: &mut SuperBlock<W>,
    ) -> &[u64] {
        self.forward_defaults_directed(graph, coins, block, Direction::default())
    }

    /// [`Self::forward_defaults`] with an explicit traversal
    /// [`Direction`]. Every step either **pushes** (expand the frontier
    /// queue over out-edges) or **pulls** (sweep every node with
    /// undecided lanes over its in-edges, retiring the scan early once
    /// the node saturates); [`Direction::Auto`] picks per step. A pull
    /// sweep only pays when its two shortcuts fire — skipping saturated
    /// nodes wholesale and breaking the in-edge scan at saturation — so
    /// Auto pulls when the frontier is node-dense (≥ 1/32 of all nodes
    /// queued, a loose Beamer-style occupancy signal) **and** lane-dense
    /// (≥ half of all covered lanes already defaulted, so saturation is
    /// common). On low-probability graphs whose worlds stay lane-sparse
    /// the second condition keeps Auto on the push path throughout.
    ///
    /// The update is a monotone OR and every coin word is random access
    /// by `(seed, block, item, level)`, so touch order cannot change
    /// values: all directions reach the identical fixpoint and the
    /// returned words are **bit-identical** for every choice. Only the
    /// cost diagnostics may differ — push and pull can materialize
    /// different lazy edge subsets on the way to the same answer.
    pub fn forward_defaults_directed(
        &mut self,
        graph: &UncertainGraph,
        coins: &CoinTable,
        block: &mut SuperBlock<W>,
        direction: Direction,
    ) -> &[u64] {
        debug_assert_eq!(block.node_words.len(), self.defaulted.len(), "block/kernel mismatch");
        debug_assert_eq!(block.edge_epoch.len(), graph.num_edges(), "block/graph edge mismatch");
        self.defaulted.copy_from_slice(block.node_words());
        self.queue.clear();
        self.live_lanes = 0;
        for (v, words) in self.defaulted.chunks_exact(W).enumerate() {
            let mut any = 0u64;
            for &w in words {
                any |= w;
                self.live_lanes += u64::from(w.count_ones());
            }
            if any != 0 {
                self.queue.push(v as u32);
            }
        }
        let n = graph.num_nodes();
        let covered_lanes =
            block.lane_masks().iter().map(|m| u64::from(m.count_ones())).sum::<u64>() * n as u64;
        let mut previous: Option<bool> = None;
        while !self.queue.is_empty() {
            let pull = match direction {
                Direction::Push => false,
                Direction::Pull => true,
                // Occupancy switch: pull only when the frontier is
                // node-dense (Beamer) and lane-dense — the regime where
                // the sweep's saturated-node skip and early scan break
                // actually fire (see the method docs). The node bound is
                // deliberately loose (1/32, not the classic 1/8): at
                // high lane density the sweep's saturated-skip makes a
                // pull step nearly free, and thrashing back to push for
                // shrinking-queue tails measurably loses more than the
                // sweep costs.
                Direction::Auto => {
                    self.queue.len() * 32 >= n && 2 * self.live_lanes >= covered_lanes
                }
            };
            if previous.is_some_and(|p| p != pull) {
                block.usage.direction_switches += 1;
            }
            previous = Some(pull);
            if pull {
                block.usage.pull_steps += 1;
                self.pull_step(graph, coins, block);
            } else {
                block.usage.push_steps += 1;
                self.push_step(graph, coins, block);
            }
            std::mem::swap(&mut self.queue, &mut self.next);
        }
        &self.defaulted
    }

    /// One sparse frontier step: expand each queued node's out-edges,
    /// OR its lanes into the targets, and collect every node that
    /// gained lanes as the next frontier.
    fn push_step(&mut self, graph: &UncertainGraph, coins: &CoinTable, block: &mut SuperBlock<W>) {
        self.next.clear();
        for qi in 0..self.queue.len() {
            let v = self.queue[qi] as usize;
            let lanes = *wv::<W>(&self.defaulted, v);
            let targets = graph.out_neighbors(NodeId(v as u32));
            for (e, &t) in graph.out_edge_range(NodeId(v as u32)).zip(targets) {
                let t = t as usize;
                // Lanes the transmission could still infect; if none,
                // the edge word-vector is not even synthesized.
                let mut gate = [0u64; W];
                let mut any = 0u64;
                let target = wv::<W>(&self.defaulted, t);
                for w in 0..W {
                    gate[w] = lanes[w] & !target[w];
                    any |= gate[w];
                }
                if any == 0 {
                    continue;
                }
                let edge = block.edge_word(coins, e);
                let target = wv_mut::<W>(&mut self.defaulted, t);
                let mut new_any = 0u64;
                let mut new_lanes = 0u64;
                for w in 0..W {
                    let new = gate[w] & edge[w];
                    new_any |= new;
                    new_lanes += u64::from(new.count_ones());
                    target[w] |= new;
                }
                self.live_lanes += new_lanes;
                if new_any != 0 && !self.in_queue[t] {
                    self.in_queue[t] = true;
                    self.next.push(t as u32);
                }
            }
        }
        // Restore the all-false `in_queue` invariant between steps (the
        // flags only deduplicate pushes within one step).
        for &t in &self.next {
            self.in_queue[t as usize] = false;
        }
    }

    /// One dense frontier step: sweep every node that still has
    /// undecided lanes, pulling `defaulted[source] & edge` over its
    /// in-edges. Saturated nodes are skipped wholesale, and the in-edge
    /// scan breaks as soon as the node's covered lanes all decide.
    /// Within-sweep reads see already-updated sources (Gauss–Seidel),
    /// which only accelerates convergence — monotonicity makes the
    /// fixpoint schedule-independent.
    fn pull_step(&mut self, graph: &UncertainGraph, coins: &CoinTable, block: &mut SuperBlock<W>) {
        self.next.clear();
        let masks = *block.lane_masks();
        for v in 0..graph.num_nodes() {
            let mut undecided = [0u64; W];
            let mut any_undecided = 0u64;
            {
                let mine = wv::<W>(&self.defaulted, v);
                for w in 0..W {
                    undecided[w] = masks[w] & !mine[w];
                    any_undecided |= undecided[w];
                }
            }
            if any_undecided == 0 {
                continue;
            }
            let mut gained = [0u64; W];
            let mut any_gained = 0u64;
            let sources = graph.in_neighbors(NodeId(v as u32));
            for (&e, &s) in graph.in_edge_ids(NodeId(v as u32)).iter().zip(sources) {
                let mut gate = [0u64; W];
                let mut any = 0u64;
                let source = wv::<W>(&self.defaulted, s as usize);
                for w in 0..W {
                    gate[w] = source[w] & undecided[w];
                    any |= gate[w];
                }
                if any == 0 {
                    continue;
                }
                let edge = block.edge_word(coins, e as usize);
                let mut still = 0u64;
                for w in 0..W {
                    let new = gate[w] & edge[w];
                    gained[w] |= new;
                    any_gained |= new;
                    undecided[w] &= !new;
                    still |= undecided[w];
                }
                if still == 0 {
                    break;
                }
            }
            if any_gained != 0 {
                let mine = wv_mut::<W>(&mut self.defaulted, v);
                for w in 0..W {
                    mine[w] |= gained[w];
                    self.live_lanes += u64::from(gained[w].count_ones());
                }
                self.next.push(v as u32);
            }
        }
    }

    /// Starts a new superblock for [`Self::reverse_hit_words`]: forgets
    /// the per-superblock positive/negative caches. Must be called after
    /// materializing a fresh superblock and before the first candidate
    /// query against it.
    pub fn begin_block(&mut self) {
        self.hit_known.iter_mut().for_each(|w| *w = 0);
        self.safe_known.iter_mut().for_each(|w| *w = 0);
    }

    /// Decides, for every lane of every word of `block` at once, whether
    /// candidate `v` defaults in that lane's world: a reverse BFS over
    /// **in**-edges from `v` looks for a self-defaulted ancestor
    /// reachable through surviving edges, with per-lane frontiers.
    /// Returns the word-vector of worlds where `v` defaults. Edge
    /// word-vectors materialize lazily as the reverse frontier first
    /// crosses them, so the superblock's coin cost is
    /// `O(W · edges reached)`, not `O(W · m)`.
    ///
    /// Results are pure functions of the superblock's worlds, so the
    /// per-superblock caches filled by earlier candidates only skip work
    /// — they can never change an answer.
    pub fn reverse_hit_words(
        &mut self,
        graph: &UncertainGraph,
        coins: &CoinTable,
        block: &mut SuperBlock<W>,
        v: NodeId,
    ) -> [u64; W] {
        let want = *block.lane_masks();
        let mut hit = [0u64; W];
        // Lanes still needing a verdict; shrinks as hits are found.
        let mut undecided = [0u64; W];
        let mut any_undecided = 0u64;
        {
            let known_hit = wv::<W>(&self.hit_known, v.index());
            let known_safe = wv::<W>(&self.safe_known, v.index());
            for w in 0..W {
                hit[w] = known_hit[w] & want[w];
                undecided[w] = want[w] & !hit[w] & !known_safe[w];
                any_undecided |= undecided[w];
            }
        }
        if any_undecided != 0 {
            self.queue.clear();
            self.touched.clear();
            wv_mut::<W>(&mut self.reached, v.index()).copy_from_slice(&undecided);
            self.touched.push(v.0);
            self.queue.push(v.0);
            self.in_queue[v.index()] = true;
            let mut head = 0;
            'bfs: while head < self.queue.len() {
                let u = self.queue[head] as usize;
                head += 1;
                self.in_queue[u] = false;
                let mut active = [0u64; W];
                let mut any_active = 0u64;
                {
                    let reached = wv::<W>(&self.reached, u);
                    for w in 0..W {
                        active[w] = reached[w] & undecided[w];
                        any_active |= active[w];
                    }
                }
                if any_active == 0 {
                    continue;
                }
                // A self-defaulted (or known-defaulted) ancestor decides
                // its lanes immediately.
                let mut hits_here = [0u64; W];
                let mut any_hits = 0u64;
                {
                    let node = block.node_word_vec(u);
                    let known_hit = wv::<W>(&self.hit_known, u);
                    for w in 0..W {
                        hits_here[w] = active[w] & (node[w] | known_hit[w]);
                        any_hits |= hits_here[w];
                    }
                }
                if any_hits != 0 {
                    let mut left = 0u64;
                    for w in 0..W {
                        hit[w] |= hits_here[w];
                        undecided[w] &= !hits_here[w];
                        left |= undecided[w];
                    }
                    if left == 0 {
                        break 'bfs;
                    }
                }
                // Known-safe lanes cannot contain a defaulted ancestor:
                // do not expand them.
                let mut expand = [0u64; W];
                let mut any_expand = 0u64;
                {
                    let known_safe = wv::<W>(&self.safe_known, u);
                    for w in 0..W {
                        expand[w] = active[w] & !hits_here[w] & !known_safe[w];
                        any_expand |= expand[w];
                    }
                }
                if any_expand == 0 {
                    continue;
                }
                let sources = graph.in_neighbors(NodeId(u as u32));
                for (&e, &s) in graph.in_edge_ids(NodeId(u as u32)).iter().zip(sources) {
                    let s = s as usize;
                    let mut gate = [0u64; W];
                    let mut any_gate = 0u64;
                    let mut was_reached = 0u64;
                    {
                        let reached = wv::<W>(&self.reached, s);
                        for w in 0..W {
                            gate[w] = expand[w] & !reached[w];
                            any_gate |= gate[w];
                            was_reached |= reached[w];
                        }
                    }
                    if any_gate == 0 {
                        continue;
                    }
                    let edge = block.edge_word(coins, e as usize);
                    let reached = wv_mut::<W>(&mut self.reached, s);
                    let mut any_new = 0u64;
                    for w in 0..W {
                        let new = gate[w] & edge[w];
                        any_new |= new;
                        reached[w] |= new;
                    }
                    if any_new != 0 {
                        if was_reached == 0 {
                            self.touched.push(s as u32);
                        }
                        if !self.in_queue[s] {
                            self.in_queue[s] = true;
                            self.queue.push(s as u32);
                        }
                    }
                }
            }
            // Reset per-candidate scratch. `in_queue` may hold stale
            // `true` marks when the search broke early, so clear both.
            for &u in &self.touched {
                wv_mut::<W>(&mut self.reached, u as usize).fill(0);
                self.in_queue[u as usize] = false;
            }
        }
        // Record the verdicts: lanes that exhausted without a hit are
        // provably safe for this candidate within this superblock.
        let known_hit = wv_mut::<W>(&mut self.hit_known, v.index());
        for w in 0..W {
            known_hit[w] |= hit[w];
        }
        let known_safe = wv_mut::<W>(&mut self.safe_known, v.index());
        for w in 0..W {
            known_safe[w] |= want[w] & !hit[w];
        }
        hit
    }

    /// [`Self::reverse_hit_words`] over a candidate list, writing one
    /// word-vector per candidate into `out` (cleared and refilled as a
    /// flat stride-`W` buffer, candidate `i` at `out[i·W .. i·W + W]`).
    /// Calls [`Self::begin_block`] internally.
    pub fn reverse_hits_into(
        &mut self,
        graph: &UncertainGraph,
        coins: &CoinTable,
        block: &mut SuperBlock<W>,
        candidates: &[NodeId],
        out: &mut Vec<u64>,
    ) {
        self.begin_block();
        out.clear();
        for &v in candidates {
            let words = self.reverse_hit_words(graph, coins, block, v);
            out.extend_from_slice(&words);
        }
    }
}

impl BlockKernel {
    /// Single-word [`SuperKernel::reverse_hit_words`]: the lane mask of
    /// worlds where candidate `v` defaults. Used by the scattered-lane
    /// adaptive passes (BSRBK), which replay individual lanes.
    pub fn reverse_hit_word(
        &mut self,
        graph: &UncertainGraph,
        coins: &CoinTable,
        block: &mut WorldBlock,
        v: NodeId,
    ) -> u64 {
        self.reverse_hit_words(graph, coins, block, v)[0]
    }
}

/// Splits a sample-id range into chunks that never cross a 64-aligned
/// block boundary — [`superblock_chunks`] at width 1.
pub fn block_chunks(range: std::ops::Range<u64>) -> impl Iterator<Item = std::ops::Range<u64>> {
    superblock_chunks(range, 1)
}

/// Splits a sample-id range into chunks that never cross a
/// `words · 64`-aligned superblock boundary — the unit the parallel
/// driver partitions by and the engine cache snapshots at.
pub fn superblock_chunks(
    range: std::ops::Range<u64>,
    words: usize,
) -> impl Iterator<Item = std::ops::Range<u64>> {
    let span = (words * LANES) as u64;
    let end = range.end.max(range.start);
    let mut next = range.start;
    std::iter::from_fn(move || {
        if next >= end {
            return None;
        }
        let start = next;
        let boundary = (start / span + 1) * span;
        next = boundary.min(end);
        Some(start..next)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn chain() -> UncertainGraph {
        from_parts(&[0.5, 0.0, 0.0], &[(0, 1, 0.5), (1, 2, 0.5)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    fn mesh() -> UncertainGraph {
        from_parts(
            &[0.4, 0.1, 0.2, 0.0, 0.3],
            &[(0, 1, 0.6), (1, 2, 0.5), (2, 0, 0.4), (1, 3, 0.7), (3, 4, 0.9)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap()
    }

    #[test]
    fn lanes_match_materialized_worlds_bitwise() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        block.materialize(&g, &coins, 42, 128, 64);
        assert_eq!(block.lane_mask(), u64::MAX);
        for j in [0usize, 1, 17, 63] {
            let expected = PossibleWorld::sample_indexed(&g, 42, 128 + j as u64);
            assert_eq!(block.lane_world(&coins, j), expected, "lane {j}");
        }
    }

    #[test]
    fn superblock_lanes_match_materialized_worlds_bitwise() {
        let g = mesh();
        let coins = CoinTable::new(&g);
        let mut block = SuperBlock::<4>::new(&g);
        // Superblock 2 of width 4 covers samples 512..768.
        block.materialize(&g, &coins, 42, 512, 256);
        assert_eq!(block.lane_masks(), &[u64::MAX; 4]);
        assert_eq!(block.lane_count(), 256);
        for lane in [0usize, 63, 64, 100, 191, 255] {
            let expected = PossibleWorld::sample_indexed(&g, 42, 512 + lane as u64);
            assert_eq!(block.lane_world(&coins, lane), expected, "lane {lane}");
        }
    }

    #[test]
    fn superblock_words_match_width1_blocks_bitwise() {
        // Word w of a superblock must hold exactly the lane words a
        // width-1 materialization of home block w would synthesize.
        let g = mesh();
        let coins = CoinTable::new(&g);
        let mut wide = SuperBlock::<4>::new(&g);
        wide.materialize(&g, &coins, 9, 256, 256);
        wide.force_edges(&coins);
        for w in 0..4usize {
            let mut narrow = WorldBlock::new(&g);
            narrow.materialize(&g, &coins, 9, 256 + (w * LANES) as u64, LANES);
            narrow.force_edges(&coins);
            for v in 0..g.num_nodes() {
                assert_eq!(wide.node_word_vec(v)[w], narrow.node_word(v), "node {v} word {w}");
            }
            for e in 0..g.num_edges() {
                assert_eq!(
                    wide.edge_word(&coins, e)[w],
                    narrow.edge_word(&coins, e)[0],
                    "edge {e} word {w}"
                );
            }
        }
    }

    #[test]
    fn partial_blocks_mask_unused_lanes() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        block.materialize(&g, &coins, 7, 0, 5);
        assert_eq!(block.lane_mask(), 0b11111);
        assert_eq!(block.lane_count(), 5);
        block.force_edges(&coins);
        // High lanes read as all-zero coins.
        for w in block.node_words().iter().chain(&block.edge_words) {
            assert_eq!(w & !0b11111, 0);
        }
    }

    #[test]
    fn partial_superblocks_mask_trailing_words() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = SuperBlock::<4>::new(&g);
        // Samples 0..70: word 0 full, word 1 partial, words 2–3 empty.
        block.materialize(&g, &coins, 7, 0, 70);
        assert_eq!(block.lane_masks(), &[u64::MAX, 0b111111, 0, 0]);
        assert_eq!(block.lane_count(), 70);
        block.force_edges(&coins);
        for words in block.node_words.chunks_exact(4).chain(block.edge_words.chunks_exact(4)) {
            assert_eq!(words[1] & !0b111111, 0);
            assert_eq!(words[2], 0);
            assert_eq!(words[3], 0);
        }
    }

    #[test]
    fn mid_superblock_chunks_mask_leading_words() {
        // A cache extension can resume at a 64-aligned point that is not
        // superblock-aligned: samples 64..256 of a width-4 superblock
        // leave word 0 empty.
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = SuperBlock::<4>::new(&g);
        block.materialize(&g, &coins, 7, 64, 192);
        assert_eq!(block.lane_masks(), &[0, u64::MAX, u64::MAX, u64::MAX]);
        let mut full = SuperBlock::<4>::new(&g);
        full.materialize(&g, &coins, 7, 0, 256);
        for v in 0..g.num_nodes() {
            assert_eq!(&block.node_word_vec(v)[1..], &full.node_word_vec(v)[1..], "node {v}");
            assert_eq!(block.node_word_vec(v)[0], 0, "node {v} word 0");
        }
    }

    #[test]
    fn unaligned_chunks_share_their_block_words() {
        // Samples 70..75 are lanes 6..11 of block 1: the same transposed
        // words as a full materialization of that block, masked.
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut full = WorldBlock::new(&g);
        full.materialize(&g, &coins, 9, 64, 64);
        full.force_edges(&coins);
        let mut partial = WorldBlock::new(&g);
        partial.materialize(&g, &coins, 9, 70, 5);
        partial.force_edges(&coins);
        assert_eq!(partial.lane_mask(), 0b11111 << 6);
        for v in 0..g.num_nodes() {
            assert_eq!(partial.node_word(v), full.node_word(v) & (0b11111 << 6), "node {v}");
        }
        for e in 0..g.num_edges() {
            assert_eq!(partial.edge_words[e], full.edge_words[e] & (0b11111 << 6), "edge {e}");
        }
    }

    #[test]
    fn lazy_edges_match_eager_edges_bitwise() {
        let g = mesh();
        let coins = CoinTable::new(&g);
        let mut eager = SuperBlock::<2>::new(&g);
        eager.materialize(&g, &coins, 5, 0, 128);
        eager.force_edges(&coins);
        let mut lazy = SuperBlock::<2>::new(&g);
        lazy.materialize(&g, &coins, 5, 0, 128);
        for e in [3usize, 0, 4, 1, 2, 3] {
            assert_eq!(lazy.edge_word(&coins, e), eager.edge_word(&coins, e), "edge {e}");
        }
    }

    #[test]
    fn usage_accounts_for_lazy_skips() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        block.materialize(&g, &coins, 1, 0, 64);
        let _ = block.edge_word(&coins, 0);
        let usage = block.take_usage();
        assert_eq!(usage.edge_words_materialized, 1);
        assert_eq!(usage.edge_words_skipped, 1);
        assert_eq!(usage.superblocks, 1);
        assert!(usage.words > 0);
        assert!((usage.lazy_skip_ratio() - 0.5).abs() < 1e-12);
        // Counters were drained.
        assert_eq!(block.take_usage(), CoinUsage::default());
        // Touching a fresh edge after a mid-block drain must not
        // underflow the pending count (the edge was already credited as
        // skipped by the drain).
        let _ = block.edge_word(&coins, 1);
        let after = block.take_usage();
        assert_eq!(after.edge_words_materialized, 1);
        assert_eq!(after.edge_words_skipped, 0);
    }

    #[test]
    fn superblock_usage_counts_covered_words_only() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = SuperBlock::<4>::new(&g);
        // 70 lanes cover 2 of the 4 words; touching edge 0 materializes
        // its covered words, edge 1 stays skipped.
        block.materialize(&g, &coins, 1, 0, 70);
        let _ = block.edge_word(&coins, 0);
        let usage = block.take_usage();
        assert_eq!(usage.edge_words_materialized, 2, "2 covered words for the touched edge");
        assert_eq!(usage.edge_words_skipped, 2, "2 covered words for the untouched edge");
        assert_eq!(usage.superblocks, 1);
    }

    #[test]
    fn forward_kernel_matches_scalar_world_evaluation() {
        let g = mesh();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        let mut kernel = BlockKernel::new(&g);
        block.materialize(&g, &coins, 9, 0, 64);
        let words = kernel.forward_defaults(&g, &coins, &mut block).to_vec();
        for j in 0..64 {
            let scalar = block.lane_world(&coins, j).defaulted_nodes(&g);
            for v in 0..g.num_nodes() {
                assert_eq!(words[v] >> j & 1 == 1, scalar[v], "lane {j}, node {v}");
            }
        }
    }

    #[test]
    fn superblock_forward_matches_width1_forward() {
        let g = mesh();
        let coins = CoinTable::new(&g);
        let mut wide = SuperBlock::<8>::new(&g);
        let mut wide_kernel = SuperKernel::<8>::new(&g);
        wide.materialize(&g, &coins, 11, 0, 512);
        let wide_words = wide_kernel.forward_defaults(&g, &coins, &mut wide).to_vec();
        let mut narrow = WorldBlock::new(&g);
        let mut narrow_kernel = BlockKernel::new(&g);
        for w in 0..8usize {
            narrow.materialize(&g, &coins, 11, (w * LANES) as u64, LANES);
            let narrow_words = narrow_kernel.forward_defaults(&g, &coins, &mut narrow);
            for v in 0..g.num_nodes() {
                assert_eq!(wide_words[v * 8 + w], narrow_words[v], "node {v} word {w}");
            }
        }
    }

    #[test]
    fn reverse_kernel_matches_forward_kernel() {
        let g = from_parts(
            &[0.3, 0.2, 0.1, 0.4],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (0, 3, 0.25), (3, 0, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        let mut kernel = BlockKernel::new(&g);
        block.materialize(&g, &coins, 3, 64, 64);
        let forward = kernel.forward_defaults(&g, &coins, &mut block).to_vec();
        let candidates: Vec<NodeId> = g.nodes().collect();
        let mut hits = Vec::new();
        kernel.reverse_hits_into(&g, &coins, &mut block, &candidates, &mut hits);
        assert_eq!(hits, forward, "reverse and forward must agree on every lane");
        // Repeating candidates exercises the per-block caches.
        let repeated: Vec<NodeId> = candidates.iter().chain(candidates.iter()).copied().collect();
        let mut hits2 = Vec::new();
        kernel.reverse_hits_into(&g, &coins, &mut block, &repeated, &mut hits2);
        assert_eq!(&hits2[..4], &forward[..]);
        assert_eq!(&hits2[4..], &forward[..]);
    }

    #[test]
    fn superblock_reverse_matches_superblock_forward() {
        let g = from_parts(
            &[0.3, 0.2, 0.1, 0.4],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5), (0, 3, 0.25), (3, 0, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let coins = CoinTable::new(&g);
        let mut block = SuperBlock::<2>::new(&g);
        let mut kernel = SuperKernel::<2>::new(&g);
        // Partial superblock: 100 of 128 lanes.
        block.materialize(&g, &coins, 3, 0, 100);
        let forward = kernel.forward_defaults(&g, &coins, &mut block).to_vec();
        let candidates: Vec<NodeId> = g.nodes().collect();
        let mut hits = Vec::new();
        kernel.reverse_hits_into(&g, &coins, &mut block, &candidates, &mut hits);
        assert_eq!(hits, forward, "reverse and forward must agree on every lane");
        let repeated: Vec<NodeId> = candidates.iter().chain(candidates.iter()).copied().collect();
        let mut hits2 = Vec::new();
        kernel.reverse_hits_into(&g, &coins, &mut block, &repeated, &mut hits2);
        assert_eq!(&hits2[..8], &forward[..]);
        assert_eq!(&hits2[8..], &forward[..]);
    }

    #[test]
    fn kernel_reuse_is_stateless_across_blocks() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = SuperBlock::<2>::new(&g);
        let mut kernel = SuperKernel::<2>::new(&g);
        block.materialize(&g, &coins, 1, 0, 128);
        let first = kernel.forward_defaults(&g, &coins, &mut block).to_vec();
        block.materialize(&g, &coins, 1, 128, 128);
        let _ = kernel.forward_defaults(&g, &coins, &mut block);
        block.materialize(&g, &coins, 1, 0, 128);
        assert_eq!(kernel.forward_defaults(&g, &coins, &mut block), &first[..]);
    }

    #[test]
    fn block_chunks_align_to_64() {
        let chunks: Vec<_> = block_chunks(10..200).collect();
        assert_eq!(chunks, vec![10..64, 64..128, 128..192, 192..200]);
        assert_eq!(block_chunks(0..64).collect::<Vec<_>>(), vec![0..64]);
        assert_eq!(block_chunks(5..5).count(), 0);
        assert_eq!(block_chunks(64..66).collect::<Vec<_>>(), vec![64..66]);
    }

    #[test]
    fn superblock_chunks_align_to_width() {
        let chunks: Vec<_> = superblock_chunks(10..600, 4).collect();
        assert_eq!(chunks, vec![10..256, 256..512, 512..600]);
        assert_eq!(superblock_chunks(0..512, 8).collect::<Vec<_>>(), vec![0..512]);
        assert_eq!(superblock_chunks(5..5, 8).count(), 0);
        assert_eq!(superblock_chunks(100..130, 2).collect::<Vec<_>>(), vec![100..128, 128..130]);
    }

    #[test]
    fn word_masks_cover_chunk_exactly() {
        assert_eq!(word_masks::<4>(0, 256), [u64::MAX; 4]);
        assert_eq!(word_masks::<4>(256, 70), [u64::MAX, 0b111111, 0, 0]);
        assert_eq!(word_masks::<4>(70, 5), [0, 0b11111 << 6, 0, 0]);
        assert_eq!(word_masks::<1>(70, 5), [0b11111 << 6]);
        // Samples 190..192 live in home block 2 = word 0 of superblock 1.
        assert_eq!(word_masks::<2>(190, 2), [0b11 << 62, 0]);
        assert_eq!(word_masks::<2>(254, 2), [0, 0b11 << 62]);
    }

    #[test]
    fn lane_mask_helper() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(64), u64::MAX);
        assert_eq!(lane_mask(63), u64::MAX >> 1);
    }

    #[test]
    #[should_panic(expected = "edge_word before materialize")]
    fn edge_word_requires_a_materialized_block() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        let _ = block.edge_word(&coins, 0);
    }

    #[test]
    #[should_panic(expected = "crosses a superblock boundary")]
    fn materialize_rejects_chunks_crossing_superblocks() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = SuperBlock::<2>::new(&g);
        block.materialize(&g, &coins, 1, 100, 100);
    }

    #[test]
    #[should_panic(expected = "at most 64 lanes")]
    fn materialize_ids_rejects_oversized_blocks() {
        let g = chain();
        let coins = CoinTable::new(&g);
        let mut block = WorldBlock::new(&g);
        let ids: Vec<u64> = (0..65).collect();
        block.materialize_ids(&g, &coins, 1, &ids);
    }
}
