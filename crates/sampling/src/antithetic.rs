//! Antithetic-pair forward sampling — a variance-reduction extension.
//!
//! Pair each sample with its antithetic twin: wherever the base sample
//! consumes a uniform `r`, the twin consumes `1 − r`. Because the default
//! indicator is monotone in every coin (smaller `r` means "fires" under
//! `r < p`), the paired indicators are negatively correlated, so the
//! average of a pair has lower variance than two independent samples —
//! a classical trick (Hammersley & Morton, 1956) that slots cleanly into
//! Algorithm 1's budget.
//!
//! Caveat: the pairing couples the whole world, not individual marginals;
//! the reduction is strongest for high-probability nodes and fades for
//! deep multi-hop targets. The test quantifies it and the ablation bench
//! measures the wall-clock trade-off.

use crate::counts::DefaultCounts;
use crate::forward::ForwardSampler;
use crate::rng::Xoshiro256pp;
use ugraph::{NodeId, UncertainGraph};

/// A uniform stream that can run in mirrored mode (`1 − r`).
struct MirroredStream {
    rng: Xoshiro256pp,
    mirror: bool,
}

impl MirroredStream {
    #[inline]
    fn next(&mut self) -> f64 {
        let r = self.rng.next_f64();
        if self.mirror {
            // 1 − r stays in (0, 1]; clamp the boundary so `r < p` with
            // p = 1 still always fires.
            (1.0 - r).min(1.0 - f64::EPSILON)
        } else {
            r
        }
    }
}

/// One antithetic forward sample: behaves like
/// [`ForwardSampler::sample_with`] but draws from a mirrored stream, in
/// the same canonical world order (all node coins in node order, then
/// all edge coins in canonical edge order — the contract documented in
/// [`crate::block`]).
///
/// Implemented as a standalone walk (not via `ForwardSampler`) because
/// the mirroring must wrap every coin of the sample.
fn sample_with_stream(
    graph: &UncertainGraph,
    stream: &mut MirroredStream,
    visited: &mut [u32],
    epoch: u32,
    queue: &mut Vec<u32>,
    edge_live: &mut [bool],
    mut on_default: impl FnMut(NodeId),
) {
    queue.clear();
    for v in graph.nodes() {
        if stream.next() < graph.self_risk(v) {
            visited[v.index()] = epoch;
            queue.push(v.0);
            on_default(v);
        }
    }
    for e in graph.edges() {
        edge_live[e.index()] = stream.next() < graph.edge_prob(e);
    }
    let mut head = 0;
    while head < queue.len() {
        let vq = NodeId(queue[head]);
        head += 1;
        for e in graph.out_edges(vq) {
            if edge_live[e.id.index()] && visited[e.target.index()] != epoch {
                visited[e.target.index()] = epoch;
                queue.push(e.target.0);
                on_default(e.target);
            }
        }
    }
}

/// Runs `t` samples as `t/2` antithetic pairs (plus one plain sample if
/// `t` is odd) and returns per-node default counts.
///
/// Deterministic for a fixed seed; pair `i` derives its stream from
/// `(seed, i)` exactly like the independent sampler.
pub fn antithetic_forward_counts(graph: &UncertainGraph, t: u64, seed: u64) -> DefaultCounts {
    let n = graph.num_nodes();
    let mut counts = DefaultCounts::new(n);
    let mut visited = vec![0u32; n];
    let mut queue: Vec<u32> = Vec::new();
    let mut edge_live = vec![false; graph.num_edges()];
    let mut epoch = 0u32;
    let pairs = t / 2;
    for pair in 0..pairs {
        for mirror in [false, true] {
            epoch += 1;
            let mut stream = MirroredStream { rng: Xoshiro256pp::for_sample(seed, pair), mirror };
            counts.begin_sample();
            sample_with_stream(
                graph,
                &mut stream,
                &mut visited,
                epoch,
                &mut queue,
                &mut edge_live,
                |v| counts.bump(v.index()),
            );
        }
    }
    if t % 2 == 1 {
        epoch += 1;
        let mut stream =
            MirroredStream { rng: Xoshiro256pp::for_sample(seed, pairs), mirror: false };
        counts.begin_sample();
        sample_with_stream(
            graph,
            &mut stream,
            &mut visited,
            epoch,
            &mut queue,
            &mut edge_live,
            |v| counts.bump(v.index()),
        );
    }
    counts
}

/// Variance of the per-pair mean indicator for `node`, measured over
/// `pairs` antithetic pairs vs `pairs` independent pairs. Returns
/// `(antithetic, independent)`. Test/bench helper.
pub fn pair_variance_comparison(
    graph: &UncertainGraph,
    node: NodeId,
    pairs: u64,
    seed: u64,
) -> (f64, f64) {
    let n = graph.num_nodes();
    let mut visited = vec![0u32; n];
    let mut queue = Vec::new();
    let mut edge_live = vec![false; graph.num_edges()];
    let mut epoch = 0u32;

    let mut anti_means = Vec::with_capacity(pairs as usize);
    for pair in 0..pairs {
        let mut hits = 0.0;
        for mirror in [false, true] {
            epoch += 1;
            let mut stream = MirroredStream { rng: Xoshiro256pp::for_sample(seed, pair), mirror };
            let mut hit = false;
            sample_with_stream(
                graph,
                &mut stream,
                &mut visited,
                epoch,
                &mut queue,
                &mut edge_live,
                |v| {
                    if v == node {
                        hit = true;
                    }
                },
            );
            hits += hit as u8 as f64;
        }
        anti_means.push(hits / 2.0);
    }

    let mut indep_means = Vec::with_capacity(pairs as usize);
    let mut sampler = ForwardSampler::new(graph);
    for pair in 0..pairs {
        let mut hits = 0.0;
        for j in 0..2u64 {
            let mut rng = Xoshiro256pp::for_sample(seed ^ 0xFACE, pair * 2 + j);
            let mut hit = false;
            sampler.sample_with(graph, &mut rng, |v| {
                if v == node {
                    hit = true;
                }
            });
            hits += hit as u8 as f64;
        }
        indep_means.push(hits / 2.0);
    }
    (variance(&anti_means), variance(&indep_means))
}

fn variance(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::forward_counts;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn chain() -> UncertainGraph {
        from_parts(&[0.5, 0.0, 0.0], &[(0, 1, 0.5), (1, 2, 0.5)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    #[test]
    fn unbiased_estimates() {
        let g = chain();
        let c = antithetic_forward_counts(&g, 40_000, 3);
        assert!((c.estimate(0) - 0.5).abs() < 0.02, "{}", c.estimate(0));
        assert!((c.estimate(1) - 0.25).abs() < 0.02, "{}", c.estimate(1));
        assert!((c.estimate(2) - 0.125).abs() < 0.02, "{}", c.estimate(2));
    }

    #[test]
    fn matches_independent_sampler_in_distribution() {
        let g = chain();
        let anti = antithetic_forward_counts(&g, 30_000, 5);
        let indep = forward_counts(&g, 30_000, 6);
        for v in 0..3 {
            assert!((anti.estimate(v) - indep.estimate(v)).abs() < 0.02, "node {v}");
        }
    }

    #[test]
    fn variance_reduced_for_seed_nodes() {
        // For a pure seed node (no in-edges), the pair is perfectly
        // negatively correlated when ps = 0.5: variance collapses.
        let g = from_parts(&[0.5], &[], DuplicateEdgePolicy::Error).unwrap();
        let (anti, indep) = pair_variance_comparison(&g, NodeId(0), 4_000, 7);
        assert!(anti < indep * 0.2, "anti {anti} vs indep {indep}");
    }

    #[test]
    fn variance_not_increased_downstream() {
        // Antithetic pairing may fade with depth but must not hurt much.
        let g = chain();
        let (anti, indep) = pair_variance_comparison(&g, NodeId(2), 8_000, 9);
        assert!(anti <= indep * 1.25, "anti {anti} vs indep {indep}");
    }

    #[test]
    fn odd_budgets_count_correctly() {
        let g = chain();
        let c = antithetic_forward_counts(&g, 101, 11);
        assert_eq!(c.samples(), 101);
    }

    #[test]
    fn deterministic() {
        let g = chain();
        assert_eq!(antithetic_forward_counts(&g, 500, 13), antithetic_forward_counts(&g, 500, 13));
    }

    #[test]
    fn certain_events_still_certain_under_mirroring() {
        let g = from_parts(&[1.0, 0.0], &[(0, 1, 1.0)], DuplicateEdgePolicy::Error).unwrap();
        let c = antithetic_forward_counts(&g, 200, 15);
        assert_eq!(c.estimate(0), 1.0);
        assert_eq!(c.estimate(1), 1.0);
    }
}
