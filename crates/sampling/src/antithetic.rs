//! Antithetic-pair forward sampling — a variance-reduction extension.
//!
//! Pair each sample with its antithetic twin: wherever the base sample
//! reads a uniform bit, the twin reads its complement (see
//! [`ScalarCoins::mirrored`]), i.e. the twin compares `!U < T` where the
//! base compares `U < T`. Because the default indicator is monotone in
//! every coin, the paired indicators are negatively correlated, so the
//! average of a pair has lower variance than two independent samples —
//! a classical trick (Hammersley & Morton, 1956) that slots cleanly into
//! Algorithm 1's budget. Both members are exact Bernoulli draws under
//! the dyadic thresholds, so estimates stay unbiased.
//!
//! Caveat: the pairing couples the whole world, not individual marginals;
//! the reduction is strongest for high-probability nodes and fades for
//! deep multi-hop targets. The test quantifies it and the ablation bench
//! measures the wall-clock trade-off.

use crate::coins::{CoinTable, ScalarCoins};
use crate::counts::DefaultCounts;
use crate::forward::ForwardSampler;
use ugraph::{NodeId, UncertainGraph};

/// Runs `t` samples as `t/2` antithetic pairs (plus one plain sample if
/// `t` is odd) and returns per-node default counts.
///
/// Deterministic for a fixed seed; pair `i` derives both members from
/// the counter-RNG stream of sample id `i` — the base reads it
/// directly, the twin mirrored.
pub fn antithetic_forward_counts(graph: &UncertainGraph, t: u64, seed: u64) -> DefaultCounts {
    let table = CoinTable::new(graph);
    let mut counts = DefaultCounts::new(graph.num_nodes());
    let mut sampler = ForwardSampler::new(graph);
    let pairs = t / 2;
    for pair in 0..pairs {
        for coins in [ScalarCoins::new(seed, pair), ScalarCoins::mirrored(seed, pair)] {
            counts.begin_sample();
            sampler.sample_with(graph, &table, &coins, |v| counts.bump(v.index()));
        }
    }
    if t % 2 == 1 {
        counts.begin_sample();
        sampler
            .sample_with(graph, &table, &ScalarCoins::new(seed, pairs), |v| counts.bump(v.index()));
    }
    counts
}

/// Variance of the per-pair mean indicator for `node`, measured over
/// `pairs` antithetic pairs vs `pairs` independent pairs. Returns
/// `(antithetic, independent)`. Test/bench helper.
pub fn pair_variance_comparison(
    graph: &UncertainGraph,
    node: NodeId,
    pairs: u64,
    seed: u64,
) -> (f64, f64) {
    let table = CoinTable::new(graph);
    let mut sampler = ForwardSampler::new(graph);

    let mut run_pair = |a: ScalarCoins, b: ScalarCoins| {
        let mut hits = 0.0;
        for coins in [a, b] {
            let mut hit = false;
            sampler.sample_with(graph, &table, &coins, |v| {
                if v == node {
                    hit = true;
                }
            });
            hits += hit as u8 as f64;
        }
        hits / 2.0
    };

    let mut anti_means = Vec::with_capacity(pairs as usize);
    for pair in 0..pairs {
        anti_means.push(run_pair(ScalarCoins::new(seed, pair), ScalarCoins::mirrored(seed, pair)));
    }

    let indep_seed = seed ^ 0xFACE;
    let mut indep_means = Vec::with_capacity(pairs as usize);
    for pair in 0..pairs {
        indep_means.push(run_pair(
            ScalarCoins::new(indep_seed, pair * 2),
            ScalarCoins::new(indep_seed, pair * 2 + 1),
        ));
    }
    (variance(&anti_means), variance(&indep_means))
}

fn variance(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::forward_counts;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn chain() -> UncertainGraph {
        from_parts(&[0.5, 0.0, 0.0], &[(0, 1, 0.5), (1, 2, 0.5)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    #[test]
    fn unbiased_estimates() {
        let g = chain();
        let c = antithetic_forward_counts(&g, 40_000, 3);
        assert!((c.estimate(0) - 0.5).abs() < 0.02, "{}", c.estimate(0));
        assert!((c.estimate(1) - 0.25).abs() < 0.02, "{}", c.estimate(1));
        assert!((c.estimate(2) - 0.125).abs() < 0.02, "{}", c.estimate(2));
    }

    #[test]
    fn matches_independent_sampler_in_distribution() {
        let g = chain();
        let anti = antithetic_forward_counts(&g, 30_000, 5);
        let indep = forward_counts(&g, 30_000, 6);
        for v in 0..3 {
            assert!((anti.estimate(v) - indep.estimate(v)).abs() < 0.02, "node {v}");
        }
    }

    #[test]
    fn variance_reduced_for_seed_nodes() {
        // For a pure seed node (no in-edges), the pair is perfectly
        // negatively correlated when ps = 0.5: variance collapses.
        let g = from_parts(&[0.5], &[], DuplicateEdgePolicy::Error).unwrap();
        let (anti, indep) = pair_variance_comparison(&g, NodeId(0), 4_000, 7);
        assert!(anti < indep * 0.2, "anti {anti} vs indep {indep}");
    }

    #[test]
    fn variance_not_increased_downstream() {
        // Antithetic pairing may fade with depth but must not hurt much.
        let g = chain();
        let (anti, indep) = pair_variance_comparison(&g, NodeId(2), 8_000, 9);
        assert!(anti <= indep * 1.25, "anti {anti} vs indep {indep}");
    }

    #[test]
    fn odd_budgets_count_correctly() {
        let g = chain();
        let c = antithetic_forward_counts(&g, 101, 11);
        assert_eq!(c.samples(), 101);
    }

    #[test]
    fn deterministic() {
        let g = chain();
        assert_eq!(antithetic_forward_counts(&g, 500, 13), antithetic_forward_counts(&g, 500, 13));
    }

    #[test]
    fn certain_events_still_certain_under_mirroring() {
        let g = from_parts(&[1.0, 0.0], &[(0, 1, 1.0)], DuplicateEdgePolicy::Error).unwrap();
        let c = antithetic_forward_counts(&g, 200, 15);
        assert_eq!(c.estimate(0), 1.0);
        assert_eq!(c.estimate(1), 1.0);
    }
}
