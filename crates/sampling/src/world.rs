//! Fully materialized possible worlds.
//!
//! A [`PossibleWorld`] fixes the outcome of every node's self-default coin
//! and every edge's survival coin. It is the *semantic* reference object:
//! every coin of the world with id `i` is the scalar projection of the
//! stateless counter-RNG synthesis described in [`crate::coins`], so the
//! oracle is bit-identical — coin for coin — to what the bit-parallel
//! block kernels (lazy or eager) observe for the same `(seed, i)`. The
//! cross-validation suites assert exactly that.

use crate::coins::{CoinTable, ScalarCoins};
use ugraph::{NodeId, UncertainGraph};

/// One possible world of an uncertain graph: concrete outcomes for all
/// node and edge coins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PossibleWorld {
    /// `self_default[v]` — did node `v` default on its own?
    pub self_default: Vec<bool>,
    /// `edge_live[e]` — did edge `e` (canonical id) transmit the default?
    pub edge_live: Vec<bool>,
}

impl PossibleWorld {
    /// Samples the world with id `sample_id` against a prebuilt
    /// [`CoinTable`]: every coin is the scalar projection of the
    /// counter-RNG stream for `(seed, sample_id)`.
    pub fn sample_with_table(
        graph: &UncertainGraph,
        table: &CoinTable,
        seed: u64,
        sample_id: u64,
    ) -> Self {
        let coins = ScalarCoins::new(seed, sample_id);
        let self_default = graph.nodes().map(|v| coins.node_coin(table, v.index())).collect();
        let edge_live = graph.edges().map(|e| coins.edge_coin(table, e.index())).collect();
        PossibleWorld { self_default, edge_live }
    }

    /// Samples the world with id `sample_id` of the run seeded by `seed`
    /// (builds a throwaway [`CoinTable`]; loops should prefer
    /// [`sample_with_table`](Self::sample_with_table)).
    pub fn sample_indexed(graph: &UncertainGraph, seed: u64, sample_id: u64) -> Self {
        PossibleWorld::sample_with_table(graph, &CoinTable::new(graph), seed, sample_id)
    }

    /// Evaluates which nodes default in this world: a node defaults iff it
    /// self-defaulted or is reachable from a self-defaulted node through
    /// live edges. `O(n + m)` BFS.
    pub fn defaulted_nodes(&self, graph: &UncertainGraph) -> Vec<bool> {
        let n = graph.num_nodes();
        assert_eq!(self.self_default.len(), n, "world/graph node mismatch");
        assert_eq!(self.edge_live.len(), graph.num_edges(), "world/graph edge mismatch");
        let mut defaulted = self.self_default.clone();
        let mut queue: Vec<u32> = (0..n as u32).filter(|&v| defaulted[v as usize]).collect();
        while let Some(v) = queue.pop() {
            for e in graph.out_edges(NodeId(v)) {
                if self.edge_live[e.id.index()] && !defaulted[e.target.index()] {
                    defaulted[e.target.index()] = true;
                    queue.push(e.target.0);
                }
            }
        }
        defaulted
    }

    /// Number of coins that came up "yes" — handy for test diagnostics.
    pub fn active_counts(&self) -> (usize, usize) {
        (
            self.self_default.iter().filter(|&&b| b).count(),
            self.edge_live.iter().filter(|&&b| b).count(),
        )
    }

    /// Probability mass of this world under the graph's distribution.
    /// Exponentially small for non-trivial graphs; used by the exact
    /// enumerator in `vulnds-core` and by tests on tiny graphs.
    pub fn probability(&self, graph: &UncertainGraph) -> f64 {
        let mut p = 1.0;
        for v in graph.nodes() {
            let ps = graph.self_risk(v);
            p *= if self.self_default[v.index()] { ps } else { 1.0 - ps };
        }
        for e in graph.edges() {
            let pe = graph.edge_prob(e);
            p *= if self.edge_live[e.index()] { pe } else { 1.0 - pe };
        }
        p
    }
}

/// Iterator over **all** `2^(n+m)` possible worlds of a tiny graph, in
/// lexicographic coin order. Panics at construction if `n + m > 24` to
/// prevent accidental blow-ups.
#[derive(Debug)]
pub struct WorldEnumerator<'a> {
    graph: &'a UncertainGraph,
    next_code: u64,
    end: u64,
}

impl<'a> WorldEnumerator<'a> {
    /// Creates the enumerator. `n + m` must be at most 24.
    pub fn new(graph: &'a UncertainGraph) -> Self {
        let bits = graph.num_nodes() + graph.num_edges();
        assert!(bits <= 24, "world enumeration over {bits} coins is infeasible");
        WorldEnumerator { graph, next_code: 0, end: 1u64 << bits }
    }
}

impl Iterator for WorldEnumerator<'_> {
    type Item = PossibleWorld;

    fn next(&mut self) -> Option<PossibleWorld> {
        if self.next_code == self.end {
            return None;
        }
        let code = self.next_code;
        self.next_code += 1;
        let n = self.graph.num_nodes();
        let m = self.graph.num_edges();
        let self_default = (0..n).map(|i| code >> i & 1 == 1).collect();
        let edge_live = (0..m).map(|i| code >> (n + i) & 1 == 1).collect();
        Some(PossibleWorld { self_default, edge_live })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.end - self.next_code) as usize;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn chain() -> UncertainGraph {
        from_parts(&[0.5, 0.0, 0.0], &[(0, 1, 0.5), (1, 2, 0.5)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    #[test]
    fn sampled_world_has_right_shape() {
        let g = chain();
        let w = PossibleWorld::sample_indexed(&g, 1, 0);
        assert_eq!(w.self_default.len(), 3);
        assert_eq!(w.edge_live.len(), 2);
    }

    #[test]
    fn indexed_sampling_is_reproducible() {
        let g = chain();
        assert_eq!(
            PossibleWorld::sample_indexed(&g, 42, 7),
            PossibleWorld::sample_indexed(&g, 42, 7)
        );
        assert_ne!(
            PossibleWorld::sample_indexed(&g, 42, 7),
            PossibleWorld::sample_indexed(&g, 42, 8)
        );
    }

    #[test]
    fn propagation_follows_live_edges_only() {
        let g = chain();
        let w =
            PossibleWorld { self_default: vec![true, false, false], edge_live: vec![true, false] };
        assert_eq!(w.defaulted_nodes(&g), vec![true, true, false]);
        let w2 =
            PossibleWorld { self_default: vec![true, false, false], edge_live: vec![true, true] };
        assert_eq!(w2.defaulted_nodes(&g), vec![true, true, true]);
    }

    #[test]
    fn no_seed_no_default() {
        let g = chain();
        let w =
            PossibleWorld { self_default: vec![false, false, false], edge_live: vec![true, true] };
        assert_eq!(w.defaulted_nodes(&g), vec![false, false, false]);
    }

    #[test]
    fn propagation_handles_cycles() {
        let g = from_parts(
            &[0.5, 0.0, 0.0],
            &[(0, 1, 0.5), (1, 2, 0.5), (2, 0, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let w = PossibleWorld {
            self_default: vec![false, true, false],
            edge_live: vec![true, true, true],
        };
        // 1 defaults → 2 → 0; terminates despite the cycle.
        assert_eq!(w.defaulted_nodes(&g), vec![true, true, true]);
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let g = chain();
        let total: f64 = WorldEnumerator::new(&g).map(|w| w.probability(&g)).sum();
        assert!((total - 1.0).abs() < 1e-10, "total = {total}");
    }

    #[test]
    fn enumerator_yields_all_worlds() {
        let g = chain(); // 3 nodes + 2 edges = 32 worlds
        let worlds: Vec<_> = WorldEnumerator::new(&g).collect();
        assert_eq!(worlds.len(), 32);
        // All distinct.
        for i in 0..worlds.len() {
            for j in i + 1..worlds.len() {
                assert_ne!(worlds[i], worlds[j]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn enumerator_rejects_large_graphs() {
        let risks = vec![0.5; 30];
        let g = from_parts(&risks, &[], DuplicateEdgePolicy::Error).unwrap();
        let _ = WorldEnumerator::new(&g);
    }

    #[test]
    fn exact_default_probability_of_example1() {
        // Paper Example 1: p(A) = 0.2, p(B) = 1 − 0.8·(1 − 0.2·0.2) = 0.232.
        let g = from_parts(&[0.2, 0.2], &[(0, 1, 0.2)], DuplicateEdgePolicy::Error).unwrap();
        let mut p = [0.0f64; 2];
        for w in WorldEnumerator::new(&g) {
            let d = w.defaulted_nodes(&g);
            let pw = w.probability(&g);
            for (i, &def) in d.iter().enumerate() {
                if def {
                    p[i] += pw;
                }
            }
        }
        assert!((p[0] - 0.2).abs() < 1e-12);
        assert!((p[1] - 0.232).abs() < 1e-12);
    }
}
