//! Accumulators turning per-sample default indicators into estimates.

/// Running counts of how often each tracked node defaulted, over a known
/// number of samples. This is the `vc` array of Algorithm 1 / Algorithm 5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefaultCounts {
    counts: Vec<u64>,
    samples: u64,
}

impl DefaultCounts {
    /// Creates an accumulator tracking `len` slots (nodes or candidates).
    pub fn new(len: usize) -> Self {
        DefaultCounts { counts: vec![0; len], samples: 0 }
    }

    /// Number of tracked slots.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` if no slots are tracked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Raw default count of slot `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Records one sample's outcome: `defaulted[i]` says whether slot `i`
    /// defaulted in this sample.
    pub fn record_mask(&mut self, defaulted: &[bool]) {
        assert_eq!(defaulted.len(), self.counts.len(), "mask length mismatch");
        self.samples += 1;
        for (c, &d) in self.counts.iter_mut().zip(defaulted) {
            *c += d as u64;
        }
    }

    /// Records a whole world block's outcomes by popcount: `words[i]` is
    /// slot `i`'s per-lane default mask and `lane_mask` selects which
    /// lanes count (all 64 for a full block, the low bits for a partial
    /// one). Equivalent to [`Self::record_mask`] once per selected lane.
    pub fn record_block(&mut self, words: &[u64], lane_mask: u64) {
        self.record_words::<1>(words, &[lane_mask]);
    }

    /// Records a whole `W`-word superblock's outcomes by popcount:
    /// `words` is a flat stride-`W` buffer (slot `i`'s word-vector at
    /// `words[i·W .. i·W + W]`) and `masks[w]` selects which lanes of
    /// word `w` count. Equivalent to [`Self::record_mask`] once per
    /// selected lane — and to [`Self::record_block`] once per word.
    pub fn record_words<const W: usize>(&mut self, words: &[u64], masks: &[u64; W]) {
        assert_eq!(words.len(), self.counts.len() * W, "block width mismatch");
        self.samples += masks.iter().map(|m| u64::from(m.count_ones())).sum::<u64>();
        for (c, vec) in self.counts.iter_mut().zip(words.chunks_exact(W)) {
            let mut hits = 0u64;
            for w in 0..W {
                hits += u64::from((vec[w] & masks[w]).count_ones());
            }
            *c += hits;
        }
    }

    /// Starts a new sample without a mask; combine with [`Self::bump`].
    pub fn begin_sample(&mut self) {
        self.samples += 1;
    }

    /// Increments slot `i` within the current sample.
    pub fn bump(&mut self, i: usize) {
        self.counts[i] += 1;
    }

    /// Estimated default probability of slot `i`: `count / samples`.
    /// Returns 0 when no samples were recorded.
    pub fn estimate(&self, i: usize) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.samples as f64
        }
    }

    /// All estimates as a vector.
    pub fn estimates(&self) -> Vec<f64> {
        (0..self.counts.len()).map(|i| self.estimate(i)).collect()
    }

    /// Merges counts from a disjoint batch of samples over the same slots.
    pub fn merge(&mut self, other: &DefaultCounts) {
        assert_eq!(self.counts.len(), other.counts.len(), "slot count mismatch");
        self.samples += other.samples;
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_estimate() {
        let mut c = DefaultCounts::new(3);
        c.record_mask(&[true, false, true]);
        c.record_mask(&[true, false, false]);
        assert_eq!(c.samples(), 2);
        assert_eq!(c.estimate(0), 1.0);
        assert_eq!(c.estimate(1), 0.0);
        assert_eq!(c.estimate(2), 0.5);
        assert_eq!(c.estimates(), vec![1.0, 0.0, 0.5]);
    }

    #[test]
    fn empty_estimates_are_zero() {
        let c = DefaultCounts::new(2);
        assert_eq!(c.estimate(0), 0.0);
        assert_eq!(c.samples(), 0);
    }

    #[test]
    fn bump_api_matches_mask_api() {
        let mut a = DefaultCounts::new(2);
        a.record_mask(&[true, false]);
        let mut b = DefaultCounts::new(2);
        b.begin_sample();
        b.bump(0);
        assert_eq!(a, b);
    }

    #[test]
    fn record_block_matches_per_lane_masks() {
        let words = [0b1011u64, 0b0110u64];
        let mut blockwise = DefaultCounts::new(2);
        blockwise.record_block(&words, 0b1111);
        let mut lanewise = DefaultCounts::new(2);
        for lane in 0..4 {
            lanewise.record_mask(&[words[0] >> lane & 1 == 1, words[1] >> lane & 1 == 1]);
        }
        assert_eq!(blockwise, lanewise);
        // A partial lane mask ignores the unselected lanes entirely.
        let mut partial = DefaultCounts::new(2);
        partial.record_block(&words, 0b0011);
        assert_eq!(partial.samples(), 2);
        assert_eq!(partial.count(0), 2);
        assert_eq!(partial.count(1), 1);
    }

    #[test]
    fn record_words_matches_per_word_record_block() {
        // Two slots, width 2: word-vectors [a0, a1], [b0, b1].
        let words = [0b1011u64, 0b1100u64, 0b0110u64, 0b0001u64];
        let masks = [0b1111u64, 0b0111u64];
        let mut wide = DefaultCounts::new(2);
        wide.record_words::<2>(&words, &masks);
        let mut narrow = DefaultCounts::new(2);
        narrow.record_block(&[words[0], words[2]], masks[0]);
        narrow.record_block(&[words[1], words[3]], masks[1]);
        assert_eq!(wide, narrow);
    }

    #[test]
    #[should_panic(expected = "block width mismatch")]
    fn record_words_checks_width() {
        let mut c = DefaultCounts::new(2);
        c.record_words::<2>(&[0u64; 3], &[u64::MAX; 2]);
    }

    #[test]
    #[should_panic(expected = "block width mismatch")]
    fn record_block_checks_width() {
        let mut c = DefaultCounts::new(2);
        c.record_block(&[0u64], u64::MAX);
    }

    #[test]
    fn merge_adds_counts_and_samples() {
        let mut a = DefaultCounts::new(2);
        a.record_mask(&[true, false]);
        let mut b = DefaultCounts::new(2);
        b.record_mask(&[true, true]);
        b.record_mask(&[false, true]);
        a.merge(&b);
        assert_eq!(a.samples(), 3);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(1), 2);
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn mask_length_is_checked() {
        let mut c = DefaultCounts::new(2);
        c.record_mask(&[true]);
    }

    #[test]
    #[should_panic(expected = "slot count mismatch")]
    fn merge_length_is_checked() {
        let mut a = DefaultCounts::new(2);
        a.merge(&DefaultCounts::new(3));
    }
}
