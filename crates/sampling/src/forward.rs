//! Forward possible-world sampling — the inner loop of Algorithm 1.
//!
//! One sample: fix the world of the `(seed, sample_id)` counter-RNG
//! stream (every coin is a stateless function of `(seed, block, item)` —
//! see [`crate::coins`] for the contract), then BFS forward from the
//! self-defaulted seeds through surviving edges. Nodes reached that way
//! default.
//!
//! Two implementations share that semantic:
//!
//! * [`ForwardSampler`] — the **scalar reference**: one world at a time,
//!   kept as the oracle the bit-parallel kernel is validated against.
//!   Because coins are random-access, it draws edge coins lazily at BFS
//!   touch — the scalar mirror of the block path's frontier-lazy words.
//! * [`forward_counts_range`] — the **runtime path**: worlds are packed
//!   64-per-[`WorldBlock`](crate::WorldBlock) with transposed lane-word synthesis and
//!   evaluated by the bit-parallel [`BlockKernel`](crate::BlockKernel), bit-identical to
//!   the scalar reference for any range and seed.

use crate::block::{superblock_chunks, SuperBlock, SuperKernel};
use crate::cancel::CancelToken;
use crate::coins::{CoinTable, CoinUsage, ScalarCoins};
use crate::counts::DefaultCounts;
use crate::direction::Direction;
use crate::width::{with_block_words, BlockWords};
use ugraph::{NodeId, UncertainGraph};

/// Reusable scalar forward sampler. Holds scratch buffers so repeated
/// samples allocate nothing.
///
/// This is the semantic reference for the block kernel, not the hot
/// path: it walks one world at a time, exactly like
/// [`PossibleWorld`](crate::PossibleWorld) evaluation, so its results
/// are bit-identical to the bit-parallel data path.
#[derive(Debug, Clone)]
pub struct ForwardSampler {
    // Epoch-stamped "defaulted in current sample" marks; avoids an O(n)
    // clear per sample.
    mark: Vec<u32>,
    epoch: u32,
    queue: Vec<u32>,
}

impl ForwardSampler {
    /// Creates a sampler with buffers sized for `graph`.
    pub fn new(graph: &UncertainGraph) -> Self {
        ForwardSampler { mark: vec![0; graph.num_nodes()], epoch: 0, queue: Vec::new() }
    }

    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }

    /// Evaluates one possible world (the one fixed by `coins`) and
    /// invokes `on_default` for every node that defaults in it (seeds
    /// and infected nodes alike, each once).
    ///
    /// Edge coins are drawn lazily when the BFS first crosses the edge;
    /// since every coin is a stateless function of `(seed, sample,
    /// item)`, the world observed is identical to a fully materialized
    /// one.
    pub fn sample_with(
        &mut self,
        graph: &UncertainGraph,
        table: &CoinTable,
        coins: &ScalarCoins,
        mut on_default: impl FnMut(NodeId),
    ) {
        let epoch = self.next_epoch();
        self.queue.clear();
        // Lines 4–7 of Algorithm 1: self-default coins, node order.
        for v in graph.nodes() {
            if coins.node_coin(table, v.index()) {
                self.mark[v.index()] = epoch;
                self.queue.push(v.0);
                on_default(v);
            }
        }
        // Lines 10–19: BFS through surviving edges, drawing each edge's
        // coin at the moment the frontier reaches it.
        let mut head = 0;
        while head < self.queue.len() {
            let vq = NodeId(self.queue[head]);
            head += 1;
            for e in graph.out_edges(vq) {
                if self.mark[e.target.index()] != epoch && coins.edge_coin(table, e.id.index()) {
                    self.mark[e.target.index()] = epoch;
                    self.queue.push(e.target.0);
                    on_default(e.target);
                }
            }
        }
    }

    /// Evaluates one world and returns the defaulted-node mask.
    /// Allocates; the closure API is preferred in loops.
    pub fn sample_mask(
        &mut self,
        graph: &UncertainGraph,
        table: &CoinTable,
        coins: &ScalarCoins,
    ) -> Vec<bool> {
        let mut mask = vec![false; graph.num_nodes()];
        self.sample_with(graph, table, coins, |v| mask[v.index()] = true);
        mask
    }
}

/// Runs `t` forward samples (ids `0..t`) and returns per-node default
/// counts. This is the whole of Algorithm 1 except the final top-k
/// selection, executed on the bit-parallel block kernel.
pub fn forward_counts(graph: &UncertainGraph, t: u64, seed: u64) -> DefaultCounts {
    forward_counts_range(graph, 0..t, seed)
}

/// [`forward_counts_range_with`] with a throwaway [`CoinTable`], for
/// callers without a session cache.
pub fn forward_counts_range(
    graph: &UncertainGraph,
    range: std::ops::Range<u64>,
    seed: u64,
) -> DefaultCounts {
    forward_counts_range_with(graph, &CoinTable::new(graph), range, seed).0
}

/// Runs forward samples for the given range of sample ids on the block
/// kernel: the range is split at 64-aligned block boundaries, each chunk
/// is materialized as a [`WorldBlock`](crate::WorldBlock) (sample `i` occupies lane
/// `i % 64` of block `i / 64`) and evaluated in one bit-parallel BFS
/// with frontier-lazy edge words; partial chunks accumulate through a
/// lane mask. Returns the counts plus the materialization-cost counters.
///
/// Sample `i` always draws from the counter-RNG stream derived from
/// `(seed, i)`, so counts over disjoint ranges merge (commutatively)
/// into exactly the counts of the union range — the property the
/// engine's incremental sample cache extends prefixes with — and the
/// result is bit-identical to the scalar [`ForwardSampler`] reference.
pub fn forward_counts_range_with(
    graph: &UncertainGraph,
    coins: &CoinTable,
    range: std::ops::Range<u64>,
    seed: u64,
) -> (DefaultCounts, CoinUsage) {
    forward_counts_range_wide::<1>(graph, coins, range, seed)
}

/// [`forward_counts_range_with`] on `W`-word superblocks: the range is
/// split at `W·64`-aligned superblock boundaries and each chunk is
/// evaluated in one `W`-wide bit-parallel BFS. Counts are bit-identical
/// at every width — width is purely a throughput knob (see
/// [`BlockWords`]).
pub fn forward_counts_range_wide<const W: usize>(
    graph: &UncertainGraph,
    coins: &CoinTable,
    range: std::ops::Range<u64>,
    seed: u64,
) -> (DefaultCounts, CoinUsage) {
    forward_counts_range_wide_directed::<W>(graph, coins, range, seed, Direction::default())
}

/// [`forward_counts_range_wide`] with an explicit traversal
/// [`Direction`]. Counts are bit-identical for every direction — like
/// width, direction is purely a throughput knob (see
/// [`crate::direction`]).
pub fn forward_counts_range_wide_directed<const W: usize>(
    graph: &UncertainGraph,
    coins: &CoinTable,
    range: std::ops::Range<u64>,
    seed: u64,
    direction: Direction,
) -> (DefaultCounts, CoinUsage) {
    forward_counts_range_wide_cancellable::<W>(graph, coins, range, seed, direction, None)
}

/// [`forward_counts_range_wide_directed`] polling a [`CancelToken`]
/// once per superblock chunk. A cancelled pass stops at the next chunk
/// boundary and returns the chunk-aligned **prefix** it completed; the
/// exact sample count is `counts.samples()`, and re-running the range
/// truncated to that count reproduces the prefix bit-identically (the
/// token decides only where the prefix ends, never what it contains).
pub fn forward_counts_range_wide_cancellable<const W: usize>(
    graph: &UncertainGraph,
    coins: &CoinTable,
    range: std::ops::Range<u64>,
    seed: u64,
    direction: Direction,
    cancel: Option<&CancelToken>,
) -> (DefaultCounts, CoinUsage) {
    let mut counts = DefaultCounts::new(graph.num_nodes());
    let mut block = SuperBlock::<W>::new(graph);
    let mut kernel = SuperKernel::<W>::new(graph);
    for chunk in superblock_chunks(range, W) {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            break;
        }
        accumulate_forward_chunk(
            graph,
            coins,
            chunk,
            seed,
            direction,
            &mut block,
            &mut kernel,
            &mut counts,
        );
    }
    (counts, block.take_usage())
}

/// [`forward_counts_range_wide`] with a runtime-selected width.
pub fn forward_counts_range_width(
    graph: &UncertainGraph,
    coins: &CoinTable,
    range: std::ops::Range<u64>,
    seed: u64,
    width: BlockWords,
) -> (DefaultCounts, CoinUsage) {
    with_block_words!(width, W, forward_counts_range_wide::<W>(graph, coins, range, seed))
}

/// [`forward_counts_range_width`] with an explicit traversal
/// [`Direction`].
pub fn forward_counts_range_width_directed(
    graph: &UncertainGraph,
    coins: &CoinTable,
    range: std::ops::Range<u64>,
    seed: u64,
    width: BlockWords,
    direction: Direction,
) -> (DefaultCounts, CoinUsage) {
    with_block_words!(
        width,
        W,
        forward_counts_range_wide_directed::<W>(graph, coins, range, seed, direction)
    )
}

/// Materializes and evaluates one ≤`W·64`-sample chunk, accumulating
/// into `counts`. Shared with the parallel driver.
#[allow(clippy::too_many_arguments)]
pub(crate) fn accumulate_forward_chunk<const W: usize>(
    graph: &UncertainGraph,
    coins: &CoinTable,
    chunk: std::ops::Range<u64>,
    seed: u64,
    direction: Direction,
    block: &mut SuperBlock<W>,
    kernel: &mut SuperKernel<W>,
    counts: &mut DefaultCounts,
) {
    let lanes = (chunk.end - chunk.start) as usize;
    block.materialize(graph, coins, seed, chunk.start, lanes);
    let words = kernel.forward_defaults_directed(graph, coins, block, direction);
    counts.record_words::<W>(words, block.lane_masks());
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn chain() -> UncertainGraph {
        from_parts(&[0.5, 0.0, 0.0], &[(0, 1, 0.5), (1, 2, 0.5)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    #[test]
    fn deterministic_nodes_behave_deterministically() {
        let g = from_parts(&[1.0, 0.0], &[(0, 1, 1.0)], DuplicateEdgePolicy::Error).unwrap();
        let table = CoinTable::new(&g);
        let mut s = ForwardSampler::new(&g);
        for i in 0..50u64 {
            let mask = s.sample_mask(&g, &table, &ScalarCoins::new(1, i));
            assert_eq!(mask, vec![true, true]);
        }
    }

    #[test]
    fn zero_probability_graph_never_defaults() {
        let g = from_parts(&[0.0, 0.0], &[(0, 1, 1.0)], DuplicateEdgePolicy::Error).unwrap();
        let counts = forward_counts(&g, 200, 3);
        assert_eq!(counts.count(0), 0);
        assert_eq!(counts.count(1), 0);
    }

    #[test]
    fn counts_converge_to_chain_marginals() {
        // p(0) = 0.5, p(1) = 0.25, p(2) = 0.125.
        let g = chain();
        let counts = forward_counts(&g, 40_000, 7);
        assert!((counts.estimate(0) - 0.5).abs() < 0.02);
        assert!((counts.estimate(1) - 0.25).abs() < 0.02);
        assert!((counts.estimate(2) - 0.125).abs() < 0.02);
    }

    #[test]
    fn each_default_reported_once() {
        let g = from_parts(
            &[1.0, 0.0, 0.0, 0.0],
            &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let table = CoinTable::new(&g);
        let mut s = ForwardSampler::new(&g);
        let mut seen = Vec::new();
        s.sample_with(&g, &table, &ScalarCoins::new(5, 0), |v| seen.push(v.0));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sampler_reuse_matches_fresh_sampler() {
        // Epoch recycling must not leak state between samples.
        let g = chain();
        let table = CoinTable::new(&g);
        let mut reused = ForwardSampler::new(&g);
        for sample_id in 0..20 {
            let coins = ScalarCoins::new(99, sample_id);
            let mut fresh = ForwardSampler::new(&g);
            assert_eq!(
                reused.sample_mask(&g, &table, &coins),
                fresh.sample_mask(&g, &table, &coins)
            );
        }
    }

    #[test]
    fn forward_counts_reproducible() {
        let g = chain();
        let a = forward_counts(&g, 500, 11);
        let b = forward_counts(&g, 500, 11);
        assert_eq!(a, b);
        let c = forward_counts(&g, 500, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn block_path_bit_identical_to_scalar_reference() {
        let g = from_parts(
            &[0.3, 0.2, 0.1],
            &[(0, 1, 0.7), (1, 2, 0.4), (0, 2, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let table = CoinTable::new(&g);
        // Budgets straddling block boundaries, including t % 64 != 0.
        for t in [1u64, 63, 64, 65, 130, 500] {
            let blockwise = forward_counts(&g, t, 21);
            let mut sampler = ForwardSampler::new(&g);
            let mut scalar = DefaultCounts::new(3);
            for i in 0..t {
                scalar.record_mask(&sampler.sample_mask(&g, &table, &ScalarCoins::new(21, i)));
            }
            assert_eq!(blockwise, scalar, "t = {t}");
        }
    }

    #[test]
    fn scalar_sampler_matches_materialized_world_bitwise() {
        // The scalar sampler and full world materialization project the
        // SAME stateless coins: identical worlds, not just equal
        // marginals — even though the sampler draws edge coins lazily.
        use crate::world::PossibleWorld;
        let g = from_parts(
            &[0.3, 0.2, 0.1],
            &[(0, 1, 0.7), (1, 2, 0.4), (0, 2, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let table = CoinTable::new(&g);
        let mut sampler = ForwardSampler::new(&g);
        for i in 0..200u64 {
            let mask = sampler.sample_mask(&g, &table, &ScalarCoins::new(22, i));
            let world = PossibleWorld::sample_with_table(&g, &table, 22, i);
            assert_eq!(mask, world.defaulted_nodes(&g), "sample {i}");
        }
    }

    #[test]
    fn every_width_is_bit_identical() {
        let g = from_parts(
            &[0.3, 0.2, 0.1],
            &[(0, 1, 0.7), (1, 2, 0.4), (0, 2, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let table = CoinTable::new(&g);
        // Budgets straddling superblock boundaries at every width.
        for range in [0..1u64, 0..100, 0..512, 0..700, 37..411, 64..256] {
            let reference = forward_counts_range_with(&g, &table, range.clone(), 5).0;
            for width in crate::BlockWords::ALL {
                let (counts, _) = forward_counts_range_width(&g, &table, range.clone(), 5, width);
                assert_eq!(counts, reference, "range {range:?}, width {width}");
            }
        }
    }

    #[test]
    fn range_decomposition_merges_exactly() {
        let g = chain();
        let whole = forward_counts_range(&g, 0..300, 31);
        // An unaligned split must still merge into the identical counts.
        let mut parts = forward_counts_range(&g, 0..97, 31);
        parts.merge(&forward_counts_range(&g, 97..300, 31));
        assert_eq!(whole, parts);
    }

    #[test]
    fn usage_reports_lazy_skips_per_block() {
        // Chain with an unreachable tail edge: 0 → 1 fires sometimes,
        // 1 → 2 only when 1 defaults; with ps(1) = ps(2) = 0 and a dead
        // first edge, the second edge is often never touched.
        let g =
            from_parts(&[0.0, 0.0, 0.0], &[(0, 1, 0.5), (1, 2, 0.5)], DuplicateEdgePolicy::Error)
                .unwrap();
        let table = CoinTable::new(&g);
        let (counts, usage) = forward_counts_range_with(&g, &table, 0..128, 9);
        assert_eq!(counts.samples(), 128);
        // No seeds ever default, so no edge is ever touched.
        assert_eq!(usage.edge_words_materialized, 0);
        assert_eq!(usage.edge_words_skipped, 4, "2 edges × 2 blocks");
        assert_eq!(usage.lazy_skip_ratio(), 1.0);
    }
}
