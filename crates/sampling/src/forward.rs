//! Forward possible-world sampling — the inner loop of Algorithm 1.
//!
//! One sample: flip every node's self-default coin, then BFS forward from
//! the self-defaulted seeds, flipping each encountered edge's survival coin
//! at most once. Nodes reached through surviving edges default. Average
//! cost is far below `O(n + m)` when self-risks are small, because only the
//! infected subgraph is traversed — but the seed coin flips are always
//! `O(n)`, which is exactly the inefficiency the reverse sampler removes
//! for small candidate sets.

use crate::counts::DefaultCounts;
use crate::rng::Xoshiro256pp;
use ugraph::{NodeId, UncertainGraph};

/// Reusable forward sampler. Holds scratch buffers so repeated samples
/// allocate nothing.
#[derive(Debug, Clone)]
pub struct ForwardSampler {
    // Epoch-stamped "defaulted in current sample" marks; avoids an O(n)
    // clear per sample.
    mark: Vec<u32>,
    epoch: u32,
    queue: Vec<u32>,
}

impl ForwardSampler {
    /// Creates a sampler with buffers sized for `graph`.
    pub fn new(graph: &UncertainGraph) -> Self {
        ForwardSampler { mark: vec![0; graph.num_nodes()], epoch: 0, queue: Vec::new() }
    }

    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }

    /// Draws one possible world and invokes `on_default` for every node
    /// that defaults in it (seeds and infected nodes alike, each once).
    pub fn sample_with(
        &mut self,
        graph: &UncertainGraph,
        rng: &mut Xoshiro256pp,
        mut on_default: impl FnMut(NodeId),
    ) {
        let epoch = self.next_epoch();
        self.queue.clear();
        // Lines 4–7 of Algorithm 1: self-default coins.
        for v in graph.nodes() {
            if rng.bernoulli(graph.self_risk(v)) {
                self.mark[v.index()] = epoch;
                self.queue.push(v.0);
                on_default(v);
            }
        }
        // Lines 10–19: BFS with per-edge survival coins. Each edge is
        // examined once (when its source is popped), so no edge memo is
        // needed.
        let mut head = 0;
        while head < self.queue.len() {
            let vq = NodeId(self.queue[head]);
            head += 1;
            for e in graph.out_edges(vq) {
                if self.mark[e.target.index()] == epoch {
                    continue; // already defaulted; coin irrelevant
                }
                if rng.bernoulli(e.prob) {
                    self.mark[e.target.index()] = epoch;
                    self.queue.push(e.target.0);
                    on_default(e.target);
                }
            }
        }
    }

    /// Draws one world and returns the defaulted-node mask. Allocates; the
    /// closure API is preferred in hot loops.
    pub fn sample_mask(&mut self, graph: &UncertainGraph, rng: &mut Xoshiro256pp) -> Vec<bool> {
        let mut mask = vec![false; graph.num_nodes()];
        self.sample_with(graph, rng, |v| mask[v.index()] = true);
        mask
    }
}

/// Runs `t` forward samples (ids `0..t`) with per-sample RNG streams and
/// returns per-node default counts. This is the whole of Algorithm 1
/// except the final top-k selection.
pub fn forward_counts(graph: &UncertainGraph, t: u64, seed: u64) -> DefaultCounts {
    forward_counts_range(graph, 0..t, seed)
}

/// Runs forward samples for the given range of sample ids.
///
/// Sample `i` always uses the RNG stream derived from `(seed, i)`, so
/// counts over disjoint ranges merge (commutatively) into exactly the
/// counts of the union range — the property the engine's incremental
/// sample cache extends prefixes with.
pub fn forward_counts_range(
    graph: &UncertainGraph,
    range: std::ops::Range<u64>,
    seed: u64,
) -> DefaultCounts {
    let mut sampler = ForwardSampler::new(graph);
    let mut counts = DefaultCounts::new(graph.num_nodes());
    for sample_id in range {
        let mut rng = Xoshiro256pp::for_sample(seed, sample_id);
        counts.begin_sample();
        sampler.sample_with(graph, &mut rng, |v| counts.bump(v.index()));
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy};

    fn chain() -> UncertainGraph {
        from_parts(&[0.5, 0.0, 0.0], &[(0, 1, 0.5), (1, 2, 0.5)], DuplicateEdgePolicy::Error)
            .unwrap()
    }

    #[test]
    fn deterministic_nodes_behave_deterministically() {
        let g = from_parts(&[1.0, 0.0], &[(0, 1, 1.0)], DuplicateEdgePolicy::Error).unwrap();
        let mut s = ForwardSampler::new(&g);
        let mut rng = Xoshiro256pp::new(1);
        for _ in 0..50 {
            let mask = s.sample_mask(&g, &mut rng);
            assert_eq!(mask, vec![true, true]);
        }
    }

    #[test]
    fn zero_probability_graph_never_defaults() {
        let g = from_parts(&[0.0, 0.0], &[(0, 1, 1.0)], DuplicateEdgePolicy::Error).unwrap();
        let counts = forward_counts(&g, 200, 3);
        assert_eq!(counts.count(0), 0);
        assert_eq!(counts.count(1), 0);
    }

    #[test]
    fn counts_converge_to_chain_marginals() {
        // p(0) = 0.5, p(1) = 0.25, p(2) = 0.125.
        let g = chain();
        let counts = forward_counts(&g, 40_000, 7);
        assert!((counts.estimate(0) - 0.5).abs() < 0.02);
        assert!((counts.estimate(1) - 0.25).abs() < 0.02);
        assert!((counts.estimate(2) - 0.125).abs() < 0.02);
    }

    #[test]
    fn each_default_reported_once() {
        let g = from_parts(
            &[1.0, 0.0, 0.0, 0.0],
            &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let mut s = ForwardSampler::new(&g);
        let mut rng = Xoshiro256pp::new(5);
        let mut seen = Vec::new();
        s.sample_with(&g, &mut rng, |v| seen.push(v.0));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sampler_reuse_matches_fresh_sampler() {
        // Epoch recycling must not leak state between samples.
        let g = chain();
        let mut reused = ForwardSampler::new(&g);
        for sample_id in 0..20 {
            let mut r1 = Xoshiro256pp::for_sample(99, sample_id);
            let mut r2 = Xoshiro256pp::for_sample(99, sample_id);
            let mut fresh = ForwardSampler::new(&g);
            assert_eq!(reused.sample_mask(&g, &mut r1), fresh.sample_mask(&g, &mut r2));
        }
    }

    #[test]
    fn forward_counts_reproducible() {
        let g = chain();
        let a = forward_counts(&g, 500, 11);
        let b = forward_counts(&g, 500, 11);
        assert_eq!(a, b);
        let c = forward_counts(&g, 500, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn agrees_with_materialized_worlds_in_distribution() {
        // Forward sampling and full world materialization are different
        // factorizations of the same distribution; compare marginals.
        use crate::world::PossibleWorld;
        let g = from_parts(
            &[0.3, 0.2, 0.1],
            &[(0, 1, 0.7), (1, 2, 0.4), (0, 2, 0.5)],
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let t = 30_000u64;
        let fwd = forward_counts(&g, t, 21);
        let mut world_counts = DefaultCounts::new(3);
        for i in 0..t {
            let w = PossibleWorld::sample_indexed(&g, 22, i);
            world_counts.record_mask(&w.defaulted_nodes(&g));
        }
        for v in 0..3 {
            let diff = (fwd.estimate(v) - world_counts.estimate(v)).abs();
            assert!(diff < 0.02, "node {v}: {} vs {}", fwd.estimate(v), world_counts.estimate(v));
        }
    }
}
