//! Touched-edge ledgers — which edge coins a sampled stream actually
//! consumed, the key to delta-aware cache revalidation.
//!
//! The lazy superblock kernel only synthesizes an edge's survival word
//! when the frontier reaches that edge. An edge that was **never
//! materialized** across every draw of a cached stream contributed no
//! transmission gate to any fixpoint, so the cached counts are
//! independent of that edge's coin: a later probability change to it
//! cannot alter what a cold re-run would have produced, and the cached
//! stream may survive the epoch bit-identically. [`TouchedEdges`] is
//! the per-kernel bitset recording those materializations;
//! [`TouchLedger`] is the shared, thread-safe union a session keeps per
//! cached stream.

use std::sync::atomic::{AtomicU64, Ordering};

/// A plain one-bit-per-edge set, owned by a single sampling kernel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TouchedEdges {
    bits: Vec<u64>,
}

impl TouchedEdges {
    /// An empty set sized for `num_edges` edges.
    pub fn new(num_edges: usize) -> Self {
        Self { bits: vec![0; num_edges.div_ceil(64)] }
    }

    /// Marks edge `e` as touched.
    #[inline]
    pub fn mark(&mut self, e: usize) {
        self.bits[e / 64] |= 1 << (e % 64);
    }

    /// True if edge `e` has been marked.
    #[inline]
    pub fn contains(&self, e: usize) -> bool {
        self.bits.get(e / 64).is_some_and(|w| w >> (e % 64) & 1 == 1)
    }

    /// Union with another set of the same size.
    pub fn merge(&mut self, other: &TouchedEdges) {
        debug_assert_eq!(self.bits.len(), other.bits.len());
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Number of marked edges.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if any of the (sorted or not) edge ids is marked.
    pub fn intersects(&self, edges: &[u32]) -> bool {
        edges.iter().any(|&e| self.contains(e as usize))
    }
}

/// A shared union of [`TouchedEdges`] across the worker threads of every
/// draw that fed one cached stream. Lock-free: workers `absorb` their
/// local bitsets with relaxed `fetch_or`, and readers take a coherent
/// view only after the drawing thread has published the draw (the
/// session's stream mutex orders the two).
#[derive(Debug, Default)]
pub struct TouchLedger {
    bits: Vec<AtomicU64>,
}

impl TouchLedger {
    /// An empty ledger sized for `num_edges` edges.
    pub fn new(num_edges: usize) -> Self {
        let mut bits = Vec::with_capacity(num_edges.div_ceil(64));
        bits.resize_with(num_edges.div_ceil(64), AtomicU64::default);
        Self { bits }
    }

    /// Folds a kernel-local touched set into the shared union.
    pub fn absorb(&self, local: &TouchedEdges) {
        debug_assert_eq!(self.bits.len(), local.bits.len());
        for (shared, &word) in self.bits.iter().zip(&local.bits) {
            if word != 0 {
                // ORDERING: Relaxed — the bits are a commutative union;
                // visibility to readers is ordered by the stream lock
                // (and thread join in the parallel drivers), not here.
                shared.fetch_or(word, Ordering::Relaxed);
            }
        }
    }

    /// A plain copy of the current union.
    pub fn snapshot(&self) -> TouchedEdges {
        TouchedEdges {
            // ORDERING: Relaxed — see `absorb`; callers hold the stream
            // lock, which orders all prior draws before this read.
            bits: self.bits.iter().map(|w| w.load(Ordering::Relaxed)).collect(),
        }
    }

    /// True if any of the edge ids is marked in the union.
    pub fn intersects(&self, edges: &[u32]) -> bool {
        edges.iter().any(|&e| {
            let (word, bit) = (e as usize / 64, e % 64);
            // ORDERING: Relaxed — see `absorb`.
            self.bits.get(word).is_some_and(|w| w.load(Ordering::Relaxed) >> bit & 1 == 1)
        })
    }

    /// Number of marked edges in the union.
    pub fn count(&self) -> usize {
        // ORDERING: Relaxed — see `absorb`.
        self.bits.iter().map(|w| w.load(Ordering::Relaxed).count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_contains_count() {
        let mut t = TouchedEdges::new(130);
        assert_eq!(t.count(), 0);
        for e in [0, 63, 64, 129] {
            t.mark(e);
            assert!(t.contains(e));
        }
        assert_eq!(t.count(), 4);
        assert!(!t.contains(1));
        assert!(!t.contains(1000), "out of range is simply absent");
        assert!(t.intersects(&[5, 129]));
        assert!(!t.intersects(&[5, 7, 128]));
        assert!(!t.intersects(&[]));
    }

    #[test]
    fn merge_is_union() {
        let mut a = TouchedEdges::new(100);
        let mut b = TouchedEdges::new(100);
        a.mark(3);
        b.mark(3);
        b.mark(97);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.contains(3) && a.contains(97));
    }

    #[test]
    fn ledger_absorbs_and_snapshots() {
        let ledger = TouchLedger::new(200);
        let mut a = TouchedEdges::new(200);
        a.mark(0);
        a.mark(150);
        let mut b = TouchedEdges::new(200);
        b.mark(150);
        b.mark(199);
        ledger.absorb(&a);
        ledger.absorb(&b);
        assert_eq!(ledger.count(), 3);
        assert!(ledger.intersects(&[199]));
        assert!(!ledger.intersects(&[198, 1000]));
        let snap = ledger.snapshot();
        assert_eq!(snap.count(), 3);
        assert!(snap.contains(0) && snap.contains(150) && snap.contains(199));
    }

    #[test]
    fn concurrent_absorbs_union_exactly() {
        let ledger = TouchLedger::new(1024);
        std::thread::scope(|s| {
            for t in 0..8usize {
                let ledger = &ledger;
                s.spawn(move || {
                    let mut local = TouchedEdges::new(1024);
                    for e in (t..1024).step_by(8) {
                        local.mark(e);
                    }
                    ledger.absorb(&local);
                });
            }
        });
        assert_eq!(ledger.count(), 1024);
    }
}
