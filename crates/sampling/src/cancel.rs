//! Cooperative cancellation for sampling passes.
//!
//! A [`CancelToken`] is a cheap, shareable "stop soon" signal: a relaxed
//! atomic flag, an optional monotonic deadline, and an optional parent
//! token (so a server-wide drain signal cancels every per-request token
//! at once). The samplers poll it **once per superblock chunk** — the
//! hot per-step loops stay branch-free — and a cancelled pass returns
//! the block-aligned prefix of worlds it completed, plus the exact
//! sample count inside the returned [`crate::DefaultCounts`].
//!
//! Determinism contract: cancellation never changes *which* worlds a
//! prefix contains, only *how many* chunks were evaluated. Because
//! sample `i` is always drawn from the stateless `(seed, i)` stream and
//! chunk counts merge commutatively, re-running the same request with
//! the returned sample count as its exact budget reproduces the
//! degraded answer bit-identically. The clock only decides where the
//! prefix ends; it never reaches the answer itself.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cooperative cancellation signal shared between a controller (a
/// server's drain logic, a deadline) and the sampling passes that poll
/// it at superblock granularity.
///
/// Cloning is cheap (an [`Arc`] bump) and every clone observes the same
/// flag. Equality is identity: two tokens are equal iff they share
/// state, which is what request-level `PartialEq` derives need.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken::build(None, None)
    }

    /// A token that additionally reports cancelled once the monotonic
    /// clock passes `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken::build(Some(deadline), None)
    }

    /// A child token: cancelled when its own flag/deadline fires *or*
    /// when `self` (the parent) is cancelled. A server hands each
    /// request a child of its drain token so one `cancel()` stops all
    /// in-flight work.
    pub fn child(&self) -> CancelToken {
        CancelToken::build(None, Some(self.clone()))
    }

    /// A child token with its own deadline (per-request timeout under a
    /// server-wide drain parent).
    pub fn child_with_deadline(&self, deadline: Instant) -> CancelToken {
        CancelToken::build(Some(deadline), Some(self.clone()))
    }

    fn build(deadline: Option<Instant>, parent: Option<CancelToken>) -> CancelToken {
        CancelToken { inner: Arc::new(Inner { flag: AtomicBool::new(false), deadline, parent }) }
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        // ORDERING: Relaxed — the flag is advisory. Pollers act on it at
        // the next chunk boundary and the data they publish travels
        // through join/channel synchronization, never through this flag.
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// True once the token (or any ancestor) is cancelled or past its
    /// deadline. Cheap enough to call once per superblock chunk.
    pub fn is_cancelled(&self) -> bool {
        // ORDERING: Relaxed — see `cancel`; a stale read only delays the
        // stop by one chunk, it cannot corrupt the returned prefix.
        if self.inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(parent) = &self.inner.parent {
            if parent.is_cancelled() {
                return true;
            }
        }
        match self.inner.deadline {
            // xlint: allow(no-wall-clock) — sanctioned deadline check:
            // the monotonic clock decides only where a sampling prefix
            // ends (which chunk count), never any sampled value; the
            // degraded answer replays bit-identically from that count.
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn starts_live_and_cancels_idempotently() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert_eq!(t, c);
        assert_ne!(t, CancelToken::new());
    }

    #[test]
    fn past_deadline_is_cancelled() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn parent_cancel_reaches_children() {
        let drain = CancelToken::new();
        let request = drain.child();
        let timed = drain.child_with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!request.is_cancelled());
        assert!(!timed.is_cancelled());
        drain.cancel();
        assert!(request.is_cancelled());
        assert!(timed.is_cancelled());
    }

    #[test]
    fn child_cancel_does_not_reach_parent() {
        let drain = CancelToken::new();
        let request = drain.child();
        request.cancel();
        assert!(!drain.is_cancelled());
        assert!(request.is_cancelled());
    }
}
