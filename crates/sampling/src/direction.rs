//! Traversal direction selection — how the superblock kernel expands
//! its frontier.
//!
//! The bit-parallel forward kernel is a frontier fixpoint over monotone
//! word-OR updates. That fixpoint can be driven two ways:
//!
//! * **Push** — the classic queue: pop a defaulted node, expand its
//!   **out-edges**, OR its lanes into each target. Cheap when the
//!   frontier is sparse (only live nodes are visited).
//! * **Pull** — a Beamer-style dense sweep: scan every node that still
//!   has undecided lanes and OR-in reachability over its **in-edges**,
//!   breaking out of the scan as soon as the node's lanes saturate.
//!   Cheap when the frontier is dense (no queue churn, saturated nodes
//!   are skipped wholesale, and the in-edge scan retires early).
//!
//! Coin words are random access by `(seed, block, item, level)` (see
//! [`crate::coins`]) and the update is a monotone OR, so *touch order
//! cannot change values*: push, pull, and any per-step mix of the two
//! reach the identical fixpoint and produce bit-identical
//! [`DefaultCounts`](crate::DefaultCounts). Direction is purely a
//! performance knob, threaded through the stack exactly like
//! [`BlockWords`](crate::BlockWords).
//!
//! [`Direction::Auto`] (the default) measures frontier occupancy each
//! step and picks per step: dense frontiers pull, sparse frontiers
//! push. On the financial self-risk regimes of the paper a `W·64`-lane
//! superblock almost always starts dense (a node is in the initial
//! frontier if *any* of its `W·64` self-default coins fired), so `Auto`
//! typically pulls from step 0 and decays to push as lanes decide.

/// How the forward kernel expands a frontier step. See the
/// [module docs](self) for the push/pull trade-off; counts are
/// bit-identical for every choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Direction {
    /// Always expand out-edges from a frontier queue.
    Push,
    /// Always sweep in-edges of undecided nodes.
    Pull,
    /// Choose per frontier step on measured occupancy (the default).
    #[default]
    Auto,
}

impl Direction {
    /// All supported directions.
    pub const ALL: [Direction; 3] = [Direction::Push, Direction::Pull, Direction::Auto];
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Direction::Push => "push",
            Direction::Pull => "pull",
            Direction::Auto => "auto",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for Direction {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "push" => Ok(Direction::Push),
            "pull" => Ok(Direction::Pull),
            "auto" => Ok(Direction::Auto),
            _ => Err(format!("direction must be one of push, pull, auto (got {s})")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(d.to_string().parse::<Direction>(), Ok(d));
        }
        assert!("both".parse::<Direction>().is_err());
        assert!("Push".parse::<Direction>().is_err());
        assert_eq!(Direction::default(), Direction::Auto);
    }
}
