//! Probability models attached to generated graph structure.
//!
//! The paper assigns probabilities two ways (§4.1): benchmark graphs get
//! uniform-random probabilities in `[0, 1]`; the financial graphs carry
//! calibrated risk probabilities from the authors' prior models
//! (\[15\], \[20\]), which are heavily skewed toward low risk — most
//! enterprises are healthy, a few are very risky. We mimic that skew with
//! a power transform of a uniform variate.

use vulnds_sampling::Xoshiro256pp;

/// How node self-risks and edge diffusion probabilities are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbabilityModel {
    /// `U[0, 1]` — the paper's setting for the five benchmark graphs.
    Uniform,
    /// `scale · U^power` — right-skewed toward 0 for `power > 1`; mimics
    /// calibrated financial risk scores (most low, few high).
    SkewedLow {
        /// Exponent applied to the uniform draw (≥ 1 skews low).
        power: f64,
        /// Upper bound of the support.
        scale: f64,
    },
    /// Every draw returns the same value — for controlled experiments.
    Constant(f64),
}

impl ProbabilityModel {
    /// The financial-network default used for Interbank/Fraud/Guarantee:
    /// cubic skew with support `[0, 0.8]` (mean ≈ 0.2).
    pub fn financial() -> Self {
        ProbabilityModel::SkewedLow { power: 3.0, scale: 0.8 }
    }

    /// Draws one probability.
    pub fn draw(&self, rng: &mut Xoshiro256pp) -> f64 {
        match *self {
            ProbabilityModel::Uniform => rng.next_f64(),
            ProbabilityModel::SkewedLow { power, scale } => {
                debug_assert!(power >= 1.0 && (0.0..=1.0).contains(&scale));
                rng.next_f64().powf(power) * scale
            }
            ProbabilityModel::Constant(p) => {
                debug_assert!((0.0..=1.0).contains(&p));
                p
            }
        }
    }

    /// Draws `count` probabilities.
    pub fn draw_many(&self, count: usize, rng: &mut Xoshiro256pp) -> Vec<f64> {
        (0..count).map(|_| self.draw(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = Xoshiro256pp::new(1);
        let v = ProbabilityModel::Uniform.draw_many(50_000, &mut rng);
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn skewed_low_has_small_mean() {
        // E[U^3 · 0.8] = 0.8/4 = 0.2.
        let mut rng = Xoshiro256pp::new(2);
        let v = ProbabilityModel::financial().draw_many(50_000, &mut rng);
        let mean: f64 = v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean - 0.2).abs() < 0.01, "mean {mean}");
        assert!(v.iter().all(|&p| (0.0..=0.8).contains(&p)));
    }

    #[test]
    fn skew_direction() {
        // Far more mass below 0.1 than above 0.5 for the financial model.
        let mut rng = Xoshiro256pp::new(3);
        let v = ProbabilityModel::financial().draw_many(20_000, &mut rng);
        let low = v.iter().filter(|&&p| p < 0.1).count();
        let high = v.iter().filter(|&&p| p > 0.5).count();
        assert!(low > 3 * high, "low {low}, high {high}");
    }

    #[test]
    fn constant_model() {
        let mut rng = Xoshiro256pp::new(4);
        assert_eq!(ProbabilityModel::Constant(0.25).draw(&mut rng), 0.25);
    }

    #[test]
    fn all_draws_are_valid_probabilities() {
        let mut rng = Xoshiro256pp::new(5);
        for model in [
            ProbabilityModel::Uniform,
            ProbabilityModel::financial(),
            ProbabilityModel::Constant(1.0),
        ] {
            for _ in 0..1000 {
                let p = model.draw(&mut rng);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}
