//! Temporal workloads: a base graph plus a stream of probability
//! recalibration events, modelling the paper's deployed system where
//! "all issued loans are evaluated regularly" and risk probabilities are
//! refreshed monthly. Drives the incremental-bounds maintainer in
//! `vulnds-core::dynamic`.

use ugraph::{EdgeId, NodeId, UncertainGraph};
use vulnds_sampling::Xoshiro256pp;

/// One probability recalibration event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateEvent {
    /// A node's self-risk was re-scored.
    SelfRisk(NodeId, f64),
    /// An edge's diffusion probability was re-scored.
    EdgeProb(EdgeId, f64),
}

/// Parameters of the update stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateStreamParams {
    /// Number of events to generate.
    pub events: usize,
    /// Fraction of events that touch nodes (the rest touch edges).
    pub node_fraction: f64,
    /// Maximum absolute drift added to the current probability
    /// (new = clamp(old + U[−drift, +drift])).
    pub drift: f64,
}

impl Default for UpdateStreamParams {
    fn default() -> Self {
        UpdateStreamParams { events: 100, node_fraction: 0.7, drift: 0.2 }
    }
}

/// Generates a drift-style update stream against `graph`'s current
/// probabilities. Events reference valid ids; values stay in `[0, 1]`.
pub fn update_stream(
    graph: &UncertainGraph,
    params: UpdateStreamParams,
    seed: u64,
) -> Vec<UpdateEvent> {
    assert!((0.0..=1.0).contains(&params.node_fraction), "node_fraction in [0,1]");
    assert!(params.drift >= 0.0, "drift must be non-negative");
    let n = graph.num_nodes();
    let m = graph.num_edges();
    assert!(n > 0, "graph must have nodes");
    let mut rng = Xoshiro256pp::new(seed);
    let mut events = Vec::with_capacity(params.events);
    for _ in 0..params.events {
        let touch_node = m == 0 || rng.next_f64() < params.node_fraction;
        if touch_node {
            let v = NodeId(rng.next_bounded(n as u64) as u32);
            let old = graph.self_risk(v);
            let delta = (rng.next_f64() * 2.0 - 1.0) * params.drift;
            events.push(UpdateEvent::SelfRisk(v, (old + delta).clamp(0.0, 1.0)));
        } else {
            let e = EdgeId(rng.next_bounded(m as u64) as u32);
            let old = graph.edge_prob(e);
            let delta = (rng.next_f64() * 2.0 - 1.0) * params.drift;
            events.push(UpdateEvent::EdgeProb(e, (old + delta).clamp(0.0, 1.0)));
        }
    }
    events
}

/// Applies an event stream to a copy of the graph (the batch-replay
/// reference the incremental maintainer is compared against).
pub fn replay(graph: &UncertainGraph, events: &[UpdateEvent]) -> UncertainGraph {
    let mut g = graph.clone();
    for &ev in events {
        match ev {
            // xlint: allow(panic-hygiene) — event streams are
            // generated against this graph, so ids and probabilities
            // are valid by construction.
            UpdateEvent::SelfRisk(v, p) => g.set_self_risk(v, p).expect("valid event"),
            // xlint: allow(panic-hygiene) — same construction
            // invariant as the self-risk arm.
            UpdateEvent::EdgeProb(e, p) => g.set_edge_prob(e, p).expect("valid event"),
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;

    #[test]
    fn stream_references_valid_ids() {
        let g = Dataset::Interbank.generate(1);
        let events = update_stream(&g, UpdateStreamParams::default(), 2);
        assert_eq!(events.len(), 100);
        for ev in &events {
            match *ev {
                UpdateEvent::SelfRisk(v, p) => {
                    assert!(v.index() < g.num_nodes());
                    assert!((0.0..=1.0).contains(&p));
                }
                UpdateEvent::EdgeProb(e, p) => {
                    assert!(e.index() < g.num_edges());
                    assert!((0.0..=1.0).contains(&p));
                }
            }
        }
    }

    #[test]
    fn node_fraction_respected() {
        let g = Dataset::Interbank.generate(1);
        let params = UpdateStreamParams { events: 2000, node_fraction: 0.8, drift: 0.1 };
        let events = update_stream(&g, params, 3);
        let nodes = events.iter().filter(|e| matches!(e, UpdateEvent::SelfRisk(..))).count();
        let frac = nodes as f64 / events.len() as f64;
        assert!((frac - 0.8).abs() < 0.05, "node fraction {frac}");
    }

    #[test]
    fn replay_applies_all_events() {
        let g = Dataset::Interbank.generate(1);
        let events =
            vec![UpdateEvent::SelfRisk(NodeId(0), 0.77), UpdateEvent::EdgeProb(EdgeId(0), 0.11)];
        let g2 = replay(&g, &events);
        assert_eq!(g2.self_risk(NodeId(0)), 0.77);
        assert_eq!(g2.edge_prob(EdgeId(0)), 0.11);
        // Original untouched; later events win over earlier ones.
        assert_ne!(g.self_risk(NodeId(0)), 0.77);
        let g3 = replay(
            &g,
            &[UpdateEvent::SelfRisk(NodeId(0), 0.2), UpdateEvent::SelfRisk(NodeId(0), 0.6)],
        );
        assert_eq!(g3.self_risk(NodeId(0)), 0.6);
    }

    #[test]
    fn edgeless_graph_gets_node_events_only() {
        let g = ugraph::from_parts(&[0.5, 0.4], &[], ugraph::DuplicateEdgePolicy::Error).unwrap();
        let params = UpdateStreamParams { events: 50, node_fraction: 0.0, drift: 0.1 };
        let events = update_stream(&g, params, 5);
        assert!(events.iter().all(|e| matches!(e, UpdateEvent::SelfRisk(..))));
    }

    #[test]
    fn deterministic() {
        let g = Dataset::Interbank.generate(1);
        assert_eq!(
            update_stream(&g, UpdateStreamParams::default(), 7),
            update_stream(&g, UpdateStreamParams::default(), 7)
        );
    }
}
