//! Directed Chung-Lu graphs with power-law degree weights.
//!
//! Nodes get out-weights and in-weights drawn from a bounded Pareto
//! (power-law) distribution with exponent `alpha`; edges are drawn by
//! sampling endpoints proportionally to their weights until the target
//! edge count (after dedup) is reached. This reproduces heavy-tailed
//! degree shapes without needing the original SNAP downloads.

use super::dedup_edges;
use crate::weighted::AliasTable;
use vulnds_sampling::Xoshiro256pp;

/// Parameters for the Chung-Lu generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChungLuParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Target number of (deduplicated) edges.
    pub edges: usize,
    /// Power-law exponent of the weight distribution (typically 2–3;
    /// smaller = heavier tail).
    pub alpha: f64,
    /// Cap on any node's weight, expressed as a maximum expected degree.
    pub max_degree: usize,
}

/// Draws a bounded Pareto weight in `[1, cap]` with tail exponent `alpha`.
fn pareto_weight(rng: &mut Xoshiro256pp, alpha: f64, cap: f64) -> f64 {
    // Inverse-CDF of Pareto with x_min = 1: x = (1 − u)^(−1/(α−1)).
    let u = rng.next_f64();
    let w = (1.0 - u).powf(-1.0 / (alpha - 1.0));
    w.min(cap)
}

/// Generates the edge list.
///
/// # Panics
/// Panics if `nodes < 2`, `alpha ≤ 1`, or the requested edge count exceeds
/// half of what a simple directed graph can hold (dedup would stall).
pub fn generate(params: ChungLuParams, rng: &mut Xoshiro256pp) -> Vec<(u32, u32)> {
    assert!(params.nodes >= 2, "need at least 2 nodes");
    assert!(params.alpha > 1.0, "alpha must exceed 1");
    let n = params.nodes;
    let max_possible = n * (n - 1);
    assert!(params.edges * 2 <= max_possible, "edge target {} too dense for n = {n}", params.edges);

    let cap = params.max_degree.max(1) as f64;
    let out_w: Vec<f64> = (0..n).map(|_| pareto_weight(rng, params.alpha, cap)).collect();
    let in_w: Vec<f64> = (0..n).map(|_| pareto_weight(rng, params.alpha, cap)).collect();
    let out_table = AliasTable::new(&out_w);
    let in_table = AliasTable::new(&in_w);

    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(params.edges * 2);
    let mut produced = 0usize;
    // Over-draw in rounds; dedup at the end of each round until the target
    // count is met (bounded retries guard degenerate parameter corners).
    let mut rounds = 0;
    let mut kept: Vec<(u32, u32)> = Vec::new();
    while kept.len() < params.edges && rounds < 64 {
        let need = (params.edges - kept.len()) * 2 + 16;
        edges.clear();
        edges.extend(kept.iter().copied());
        for _ in 0..need {
            let u = out_table.sample(rng) as u32;
            let v = in_table.sample(rng) as u32;
            edges.push((u, v));
            produced += 1;
        }
        kept = dedup_edges(std::mem::take(&mut edges));
        rounds += 1;
    }
    let _ = produced;
    kept.truncate(params.edges);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degrees(n: usize, edges: &[(u32, u32)]) -> Vec<usize> {
        let mut d = vec![0usize; n];
        for &(u, v) in edges {
            d[u as usize] += 1;
            d[v as usize] += 1;
        }
        d
    }

    #[test]
    fn hits_edge_target() {
        let mut rng = Xoshiro256pp::new(1);
        let p = ChungLuParams { nodes: 1000, edges: 5000, alpha: 2.1, max_degree: 200 };
        let e = generate(p, &mut rng);
        assert_eq!(e.len(), 5000);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let mut rng = Xoshiro256pp::new(2);
        let p = ChungLuParams { nodes: 300, edges: 1500, alpha: 2.0, max_degree: 100 };
        let e = generate(p, &mut rng);
        let mut set = std::collections::HashSet::new();
        for &(u, v) in &e {
            assert_ne!(u, v);
            assert!(set.insert((u, v)));
        }
    }

    #[test]
    fn heavy_tail_present() {
        let mut rng = Xoshiro256pp::new(3);
        let p = ChungLuParams { nodes: 2000, edges: 12_000, alpha: 2.0, max_degree: 500 };
        let e = generate(p, &mut rng);
        let d = degrees(2000, &e);
        let max = *d.iter().max().unwrap();
        let mean = d.iter().sum::<usize>() as f64 / d.len() as f64;
        // Heavy tail: max degree far above the mean.
        assert!(max as f64 > 6.0 * mean, "max {max}, mean {mean}");
    }

    #[test]
    fn higher_alpha_means_lighter_tail() {
        let gen_max = |alpha: f64, seed: u64| {
            let mut rng = Xoshiro256pp::new(seed);
            let p = ChungLuParams { nodes: 2000, edges: 10_000, alpha, max_degree: 1000 };
            let e = generate(p, &mut rng);
            *degrees(2000, &e).iter().max().unwrap()
        };
        // Average over a few seeds to dodge flukes.
        let heavy: usize = (0..3).map(|s| gen_max(1.8, s)).sum();
        let light: usize = (0..3).map(|s| gen_max(3.5, s)).sum();
        assert!(heavy > light, "heavy {heavy} !> light {light}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = ChungLuParams { nodes: 100, edges: 400, alpha: 2.2, max_degree: 50 };
        let a = generate(p, &mut Xoshiro256pp::new(7));
        let b = generate(p, &mut Xoshiro256pp::new(7));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "too dense")]
    fn rejects_overdense_request() {
        let p = ChungLuParams { nodes: 10, edges: 80, alpha: 2.0, max_degree: 10 };
        generate(p, &mut Xoshiro256pp::new(1));
    }
}
