//! Preferential-attachment generator with an optional super-hub, used for
//! the Guarantee network shape (31,309 nodes / 35,987 edges / max degree
//! 14,362 — i.e. a near-tree with one giant guarantor).
//!
//! Nodes arrive one at a time; each new borrower adds edges toward
//! existing guarantors chosen preferentially by in-degree, except that
//! with probability `hub_bias` the edge attaches to node 0 (the dominant
//! guarantor — in real guarantee data a large state-backed guarantee
//! company).

use super::dedup_edges;
use vulnds_sampling::Xoshiro256pp;

/// Parameters for the preferential-attachment generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefAttachParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Target number of edges (≥ nodes − 1 recommended; ~1.15·n matches
    /// the Guarantee network).
    pub edges: usize,
    /// Probability that an edge attaches to the super-hub (node 0).
    pub hub_bias: f64,
}

/// Generates borrower → guarantor edges.
pub fn generate(params: PrefAttachParams, rng: &mut Xoshiro256pp) -> Vec<(u32, u32)> {
    assert!(params.nodes >= 2, "need at least 2 nodes");
    assert!((0.0..1.0).contains(&params.hub_bias), "hub_bias must be in [0,1)");
    let n = params.nodes;
    let m = params.edges;

    // `targets` is the repeated-endpoint urn realizing preferential
    // attachment: each edge target is appended once per incidence.
    let mut targets: Vec<u32> = vec![0];
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m + n);

    // Phase 1: arrival. Each node v ≥ 1 adds one edge v → guarantor.
    for v in 1..n as u32 {
        let g = pick_target(&targets, v, params.hub_bias, rng);
        edges.push((v, g));
        targets.push(g);
        targets.push(v); // new node enters the urn once
    }
    // Phase 2: densification up to the edge target, sources uniform.
    let mut guard = 0usize;
    while edges.len() < m && guard < m * 20 {
        guard += 1;
        let v = rng.next_bounded(n as u64) as u32;
        let g = pick_target(&targets, v, params.hub_bias, rng);
        if g != v {
            edges.push((v, g));
            targets.push(g);
        }
    }
    let mut out = dedup_edges(edges);
    out.truncate(m);
    out
}

fn pick_target(targets: &[u32], avoid: u32, hub_bias: f64, rng: &mut Xoshiro256pp) -> u32 {
    for _ in 0..32 {
        let g = if rng.next_f64() < hub_bias {
            0
        } else {
            targets[rng.next_bounded(targets.len() as u64) as usize]
        };
        if g != avoid {
            return g;
        }
    }
    // Degenerate fallback (only reachable when `avoid` saturates the urn).
    if avoid == 0 {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_degrees(n: usize, edges: &[(u32, u32)]) -> Vec<usize> {
        let mut d = vec![0usize; n];
        for &(u, v) in edges {
            d[u as usize] += 1;
            d[v as usize] += 1;
        }
        d
    }

    #[test]
    fn connected_arrival_phase() {
        let mut rng = Xoshiro256pp::new(1);
        let p = PrefAttachParams { nodes: 500, edges: 575, hub_bias: 0.3 };
        let e = generate(p, &mut rng);
        // Every node except 0 has at least one out-edge from arrival.
        let mut has_out = vec![false; 500];
        for &(u, _) in &e {
            has_out[u as usize] = true;
        }
        let missing = (1..500).filter(|&v| !has_out[v]).count();
        // Dedup can drop a handful of arrival edges; tolerate few.
        assert!(missing < 10, "{missing} nodes without out-edge");
    }

    #[test]
    fn hub_dominates_with_bias() {
        let mut rng = Xoshiro256pp::new(2);
        let p = PrefAttachParams { nodes: 2000, edges: 2300, hub_bias: 0.4 };
        let e = generate(p, &mut rng);
        let d = total_degrees(2000, &e);
        let hub = d[0];
        let second = d[1..].iter().max().copied().unwrap();
        assert!(hub > 5 * second, "hub {hub} vs second {second}");
        // Hub absorbs a large fraction of all edges.
        assert!(hub as f64 > 0.25 * e.len() as f64);
    }

    #[test]
    fn no_hub_without_bias() {
        let mut rng = Xoshiro256pp::new(3);
        let p = PrefAttachParams { nodes: 2000, edges: 2300, hub_bias: 0.0 };
        let e = generate(p, &mut rng);
        let d = total_degrees(2000, &e);
        let hub = d[0];
        assert!(hub < e.len() / 4, "unexpected super-hub: {hub}");
    }

    #[test]
    fn near_tree_density() {
        let mut rng = Xoshiro256pp::new(4);
        let p = PrefAttachParams { nodes: 1000, edges: 1150, hub_bias: 0.3 };
        let e = generate(p, &mut rng);
        assert!(e.len() >= 1100, "only {} edges", e.len());
        assert!(e.len() <= 1150);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = PrefAttachParams { nodes: 200, edges: 230, hub_bias: 0.2 };
        assert_eq!(generate(p, &mut Xoshiro256pp::new(9)), generate(p, &mut Xoshiro256pp::new(9)));
    }
}
