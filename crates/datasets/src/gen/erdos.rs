//! Uniform `G(n, m)` directed random graphs — the control workload for
//! ablations (no degree structure).

use super::dedup_edges;
use vulnds_sampling::Xoshiro256pp;

/// Generates exactly `m` distinct directed edges chosen uniformly among
/// all ordered non-loop pairs.
///
/// # Panics
/// Panics if `m` exceeds half the possible pairs (rejection would stall).
pub fn generate(n: usize, m: usize, rng: &mut Xoshiro256pp) -> Vec<(u32, u32)> {
    assert!(n >= 2, "need at least 2 nodes");
    let max_edges = n * (n - 1);
    assert!(m * 2 <= max_edges, "edge target {m} too dense for n = {n}");
    let mut kept: Vec<(u32, u32)> = Vec::new();
    let mut rounds = 0;
    while kept.len() < m && rounds < 64 {
        let need = (m - kept.len()) * 2 + 8;
        let mut batch = std::mem::take(&mut kept);
        for _ in 0..need {
            let u = rng.next_bounded(n as u64) as u32;
            let v = rng.next_bounded(n as u64) as u32;
            batch.push((u, v));
        }
        kept = dedup_edges(batch);
        rounds += 1;
    }
    kept.truncate(m);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let e = generate(100, 1000, &mut Xoshiro256pp::new(1));
        assert_eq!(e.len(), 1000);
    }

    #[test]
    fn uniformish_degrees() {
        let e = generate(500, 5000, &mut Xoshiro256pp::new(2));
        let mut deg = vec![0usize; 500];
        for &(u, v) in &e {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = deg.iter().sum::<usize>() as f64 / 500.0;
        // Poisson-ish: no heavy tail.
        assert!((max as f64) < 3.0 * mean, "max {max}, mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            generate(50, 200, &mut Xoshiro256pp::new(3)),
            generate(50, 200, &mut Xoshiro256pp::new(3))
        );
    }

    #[test]
    #[should_panic(expected = "too dense")]
    fn rejects_overdense() {
        generate(4, 10, &mut Xoshiro256pp::new(1));
    }
}
