//! Structure generators. Each produces a deduplicated directed edge list
//! over `0..n`; probabilities are attached afterwards by
//! [`crate::attach_probabilities`].

pub mod bipartite;
pub mod chung_lu;
pub mod erdos;
pub mod interbank;
pub mod pref_attach;

use std::collections::BTreeSet;

/// Deduplicates `(u, v)` pairs and drops self-loops, preserving first-seen
/// order.
pub(crate) fn dedup_edges(edges: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut out = Vec::with_capacity(edges.len());
    for (u, v) in edges {
        if u != v && seen.insert((u, v)) {
            out.push((u, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_removes_duplicates_and_loops() {
        let e = vec![(0, 1), (1, 1), (0, 1), (1, 0)];
        assert_eq!(dedup_edges(e), vec![(0, 1), (1, 0)]);
    }
}
