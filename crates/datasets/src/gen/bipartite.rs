//! Consumer→merchant bipartite trade graph for the Fraud network shape
//! (14,242 nodes / 236,706 edges with an extreme merchant hub).
//!
//! The paper's Fraud dataset is built from credit-card transactions: each
//! edge is a trade between a consumer and a merchant. Its reported max
//! degree (85,074) exceeds the simple-graph bound, so the original counts
//! multi-edges (repeat purchases); we generate the *simple* projection and
//! document the substitution in DESIGN.md — the detection algorithms are
//! defined on simple uncertain graphs either way.

use super::dedup_edges;
use crate::weighted::AliasTable;
use vulnds_sampling::Xoshiro256pp;

/// Parameters for the bipartite trade generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BipartiteParams {
    /// Number of consumers (node ids `0..consumers`).
    pub consumers: usize,
    /// Number of merchants (node ids `consumers..consumers+merchants`).
    pub merchants: usize,
    /// Target number of distinct consumer→merchant edges.
    pub edges: usize,
    /// Zipf-like skew of merchant popularity (1.0 = heavy hub).
    pub merchant_skew: f64,
}

/// Generates consumer → merchant edges.
pub fn generate(params: BipartiteParams, rng: &mut Xoshiro256pp) -> Vec<(u32, u32)> {
    assert!(params.consumers >= 1 && params.merchants >= 1, "both sides non-empty");
    let max_edges = params.consumers * params.merchants;
    assert!(
        params.edges <= max_edges / 2,
        "edge target {} too dense for {}×{} bipartite",
        params.edges,
        params.consumers,
        params.merchants
    );

    // Merchant popularity ∝ 1 / rank^skew (Zipf).
    let weights: Vec<f64> =
        (0..params.merchants).map(|r| 1.0 / ((r + 1) as f64).powf(params.merchant_skew)).collect();
    let merchant_table = AliasTable::new(&weights);

    let mut kept: Vec<(u32, u32)> = Vec::new();
    let mut rounds = 0;
    while kept.len() < params.edges && rounds < 64 {
        let need = (params.edges - kept.len()) * 2 + 16;
        let mut batch = std::mem::take(&mut kept);
        for _ in 0..need {
            let c = rng.next_bounded(params.consumers as u64) as u32;
            let m = (params.consumers + merchant_table.sample(rng)) as u32;
            batch.push((c, m));
        }
        kept = dedup_edges(batch);
        rounds += 1;
    }
    kept.truncate(params.edges);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_bipartite_structure() {
        let mut rng = Xoshiro256pp::new(1);
        let p =
            BipartiteParams { consumers: 1000, merchants: 100, edges: 5000, merchant_skew: 1.0 };
        let e = generate(p, &mut rng);
        assert_eq!(e.len(), 5000);
        for &(c, m) in &e {
            assert!((c as usize) < 1000);
            assert!((1000..1100).contains(&(m as usize)));
        }
    }

    #[test]
    fn hub_merchant_emerges() {
        let mut rng = Xoshiro256pp::new(2);
        let p =
            BipartiteParams { consumers: 5000, merchants: 200, edges: 30_000, merchant_skew: 1.2 };
        let e = generate(p, &mut rng);
        let mut in_deg = vec![0usize; 5200];
        for &(_, m) in &e {
            in_deg[m as usize] += 1;
        }
        let hub = *in_deg.iter().max().unwrap();
        let mean_merchant = e.len() as f64 / 200.0;
        assert!(hub as f64 > 5.0 * mean_merchant, "hub {hub}, mean {mean_merchant}");
    }

    #[test]
    fn no_duplicates() {
        let mut rng = Xoshiro256pp::new(3);
        let p = BipartiteParams { consumers: 300, merchants: 50, edges: 2000, merchant_skew: 0.8 };
        let e = generate(p, &mut rng);
        let set: std::collections::HashSet<_> = e.iter().collect();
        assert_eq!(set.len(), e.len());
    }

    #[test]
    #[should_panic(expected = "too dense")]
    fn rejects_overdense() {
        let p = BipartiteParams { consumers: 10, merchants: 10, edges: 90, merchant_skew: 1.0 };
        generate(p, &mut Xoshiro256pp::new(1));
    }

    #[test]
    fn deterministic_per_seed() {
        let p = BipartiteParams { consumers: 100, merchants: 20, edges: 400, merchant_skew: 1.0 };
        assert_eq!(generate(p, &mut Xoshiro256pp::new(7)), generate(p, &mut Xoshiro256pp::new(7)));
    }
}
