//! Core-periphery interbank network in the spirit of the maximum-entropy
//! reconstruction of Anand, Craig & von Peter (the generator behind the
//! paper's Interbank dataset).
//!
//! A small core of money-center banks lends densely to each other; the
//! periphery lends to/borrows from the core sparsely. Edge direction is
//! lender → borrower, matching the paper's "edge corresponds to an
//! interbank loan from the lender bank to the borrower bank".

use super::dedup_edges;
use vulnds_sampling::Xoshiro256pp;

/// Parameters for the interbank generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterbankParams {
    /// Total number of banks.
    pub nodes: usize,
    /// Target number of loans.
    pub edges: usize,
    /// Fraction of banks in the core (e.g. 0.15).
    pub core_fraction: f64,
}

/// Generates the loan edge list.
pub fn generate(params: InterbankParams, rng: &mut Xoshiro256pp) -> Vec<(u32, u32)> {
    assert!(params.nodes >= 4, "need at least 4 banks");
    assert!((0.0..=1.0).contains(&params.core_fraction), "core_fraction in [0,1]");
    let n = params.nodes;
    let core = ((n as f64 * params.core_fraction).round() as usize).clamp(2, n);

    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(params.edges * 2);
    // Dense core: include each ordered core pair with high probability.
    for u in 0..core as u32 {
        for v in 0..core as u32 {
            if u != v && rng.next_f64() < 0.55 {
                edges.push((u, v));
            }
        }
    }
    // Periphery: each peripheral bank gets 1–3 links with random core
    // partners, random direction.
    for p in core as u32..n as u32 {
        let links = 1 + rng.next_bounded(3) as usize;
        for _ in 0..links {
            let c = rng.next_bounded(core as u64) as u32;
            if rng.next_f64() < 0.5 {
                edges.push((p, c)); // periphery lends to core
            } else {
                edges.push((c, p)); // core lends to periphery
            }
        }
    }
    let mut out = dedup_edges(edges);
    // Trim or pad toward the target with random core-periphery links.
    let mut guard = 0;
    while out.len() < params.edges && guard < params.edges * 20 {
        guard += 1;
        let c = rng.next_bounded(core as u64) as u32;
        let p = core as u32 + rng.next_bounded((n - core) as u64) as u32;
        let e = if rng.next_f64() < 0.5 { (c, p) } else { (p, c) };
        if !out.contains(&e) {
            out.push(e);
        }
    }
    out.truncate(params.edges);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_works() {
        // Table 2: 125 banks, 249 loans, max degree 47.
        let mut rng = Xoshiro256pp::new(1);
        let p = InterbankParams { nodes: 125, edges: 249, core_fraction: 0.1 };
        let e = generate(p, &mut rng);
        assert_eq!(e.len(), 249);
        let mut deg = vec![0usize; 125];
        for &(u, v) in &e {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        assert!((20..=80).contains(&max), "max degree {max} out of the Table-2 ballpark");
    }

    #[test]
    fn core_is_denser_than_periphery() {
        let mut rng = Xoshiro256pp::new(2);
        let p = InterbankParams { nodes: 200, edges: 400, core_fraction: 0.1 };
        let e = generate(p, &mut rng);
        let core = 20u32;
        let mut deg = vec![0usize; 200];
        for &(u, v) in &e {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let core_avg: f64 = deg[..core as usize].iter().sum::<usize>() as f64 / core as f64;
        let peri_avg: f64 = deg[core as usize..].iter().sum::<usize>() as f64 / (200 - core) as f64;
        assert!(core_avg > 3.0 * peri_avg, "core {core_avg}, periphery {peri_avg}");
    }

    #[test]
    fn no_duplicate_loans() {
        let mut rng = Xoshiro256pp::new(3);
        let p = InterbankParams { nodes: 125, edges: 249, core_fraction: 0.12 };
        let e = generate(p, &mut rng);
        let set: std::collections::HashSet<_> = e.iter().collect();
        assert_eq!(set.len(), e.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = InterbankParams { nodes: 125, edges: 249, core_fraction: 0.1 };
        assert_eq!(generate(p, &mut Xoshiro256pp::new(5)), generate(p, &mut Xoshiro256pp::new(5)));
    }
}
