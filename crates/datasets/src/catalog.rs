//! The eight evaluation datasets of the paper's Table 2, as synthetic
//! generators matching the published shapes (see DESIGN.md for the
//! substitution rationale).

use crate::gen::{bipartite, chung_lu, erdos, interbank, pref_attach};
use crate::probs::ProbabilityModel;
use ugraph::{from_parts, DuplicateEdgePolicy, UncertainGraph};
use vulnds_sampling::Xoshiro256pp;

/// One of the paper's evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Bitcoin OTC trust network (3,783 / 24,186).
    Bitcoin,
    /// Facebook social circles (4,039 / 88,234).
    Facebook,
    /// Wikipedia adminship votes (7,115 / 103,689).
    Wiki,
    /// Gnutella peer-to-peer overlay (62,586 / 147,892).
    P2P,
    /// Citation network (2,617 / 2,985).
    Citation,
    /// Maximum-entropy interbank loans (125 / 249).
    Interbank,
    /// Networked-guarantee loans (31,309 / 35,987, super-hub).
    Guarantee,
    /// Credit-card fraud trades (14,242 / 236,706, bipartite).
    Fraud,
}

/// Published shape targets from Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Average degree `m/n` reported in Table 2.
    pub avg_degree: f64,
    /// Maximum degree reported in Table 2 (multi-edge counts for Fraud).
    pub max_degree: usize,
    /// Whether the probabilities follow the financial (skewed) model.
    pub financial: bool,
}

impl Dataset {
    /// All eight datasets, financial ones first (paper's Table 2 order).
    pub const ALL: [Dataset; 8] = [
        Dataset::Bitcoin,
        Dataset::Facebook,
        Dataset::Wiki,
        Dataset::P2P,
        Dataset::Citation,
        Dataset::Interbank,
        Dataset::Guarantee,
        Dataset::Fraud,
    ];

    /// The four datasets used for the paper's parameter-tuning and
    /// effectiveness figures (Figures 4, 5, 7).
    pub const TUNING: [Dataset; 4] =
        [Dataset::Fraud, Dataset::Guarantee, Dataset::Interbank, Dataset::Citation];

    /// Published Table-2 shape.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Dataset::Bitcoin => DatasetSpec {
                name: "Bitcoin",
                nodes: 3_783,
                edges: 24_186,
                avg_degree: 6.39,
                max_degree: 888,
                financial: false,
            },
            Dataset::Facebook => DatasetSpec {
                name: "Facebook",
                nodes: 4_039,
                edges: 88_234,
                avg_degree: 21.85,
                max_degree: 1_045,
                financial: false,
            },
            Dataset::Wiki => DatasetSpec {
                name: "Wiki",
                nodes: 7_115,
                edges: 103_689,
                avg_degree: 14.57,
                max_degree: 1_167,
                financial: false,
            },
            Dataset::P2P => DatasetSpec {
                name: "P2P",
                nodes: 62_586,
                edges: 147_892,
                avg_degree: 2.36,
                max_degree: 95,
                financial: false,
            },
            Dataset::Citation => DatasetSpec {
                name: "Citation",
                nodes: 2_617,
                edges: 2_985,
                avg_degree: 1.14,
                max_degree: 44,
                financial: false,
            },
            Dataset::Interbank => DatasetSpec {
                name: "Interbank",
                nodes: 125,
                edges: 249,
                avg_degree: 1.99,
                max_degree: 47,
                financial: true,
            },
            Dataset::Guarantee => DatasetSpec {
                name: "Guarantee",
                nodes: 31_309,
                edges: 35_987,
                avg_degree: 1.15,
                max_degree: 14_362,
                financial: true,
            },
            Dataset::Fraud => DatasetSpec {
                name: "Fraud",
                nodes: 14_242,
                edges: 236_706,
                avg_degree: 16.62,
                max_degree: 85_074,
                financial: true,
            },
        }
    }

    /// Generates the full-scale dataset.
    pub fn generate(&self, seed: u64) -> UncertainGraph {
        self.generate_scaled(seed, 1.0)
    }

    /// Generates a proportionally shrunk instance (`scale ∈ (0, 1]`) with
    /// the same degree shape — used to keep benchmark wall-times sane.
    pub fn generate_scaled(&self, seed: u64, scale: f64) -> UncertainGraph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let spec = self.spec();
        let n = ((spec.nodes as f64 * scale).round() as usize).max(16);
        let m = ((spec.edges as f64 * scale).round() as usize).max(16);
        let mut rng = Xoshiro256pp::new(seed ^ fingerprint(spec.name));

        let edges: Vec<(u32, u32)> = match self {
            Dataset::Bitcoin => chung_lu::generate(
                chung_lu::ChungLuParams {
                    nodes: n,
                    edges: m,
                    alpha: 2.1,
                    max_degree: scaled_cap(spec.max_degree, scale),
                },
                &mut rng,
            ),
            Dataset::Facebook => chung_lu::generate(
                chung_lu::ChungLuParams {
                    nodes: n,
                    edges: m,
                    alpha: 2.0,
                    max_degree: scaled_cap(spec.max_degree, scale),
                },
                &mut rng,
            ),
            Dataset::Wiki => chung_lu::generate(
                chung_lu::ChungLuParams {
                    nodes: n,
                    edges: m,
                    alpha: 2.0,
                    max_degree: scaled_cap(spec.max_degree, scale),
                },
                &mut rng,
            ),
            Dataset::P2P => chung_lu::generate(
                chung_lu::ChungLuParams {
                    nodes: n,
                    edges: m,
                    alpha: 3.0,
                    max_degree: scaled_cap(spec.max_degree, scale).min(100),
                },
                &mut rng,
            ),
            Dataset::Citation => chung_lu::generate(
                chung_lu::ChungLuParams {
                    nodes: n,
                    edges: m,
                    alpha: 2.5,
                    max_degree: scaled_cap(spec.max_degree, scale),
                },
                &mut rng,
            ),
            Dataset::Interbank => interbank::generate(
                interbank::InterbankParams { nodes: n, edges: m, core_fraction: 0.1 },
                &mut rng,
            ),
            Dataset::Guarantee => pref_attach::generate(
                pref_attach::PrefAttachParams { nodes: n, edges: m, hub_bias: 0.35 },
                &mut rng,
            ),
            Dataset::Fraud => {
                // ~55% consumers, 45% merchants approximates the paper's
                // 19,240-raw-node transaction graph projected to 14,242.
                let consumers = (n as f64 * 0.8) as usize;
                let merchants = n - consumers;
                bipartite::generate(
                    bipartite::BipartiteParams {
                        consumers,
                        merchants,
                        edges: m,
                        merchant_skew: 1.1,
                    },
                    &mut rng,
                )
            }
        };

        let model =
            if spec.financial { ProbabilityModel::financial() } else { ProbabilityModel::Uniform };
        crate::attach_probabilities(n, &edges, model, &mut rng)
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// Uniform control dataset (not in the paper; used by ablation benches).
pub fn uniform_control(n: usize, m: usize, seed: u64) -> UncertainGraph {
    let mut rng = Xoshiro256pp::new(seed ^ fingerprint("control"));
    let edges = erdos::generate(n, m, &mut rng);
    crate::attach_probabilities(n, &edges, ProbabilityModel::Uniform, &mut rng)
}

fn scaled_cap(max_degree: usize, scale: f64) -> usize {
    ((max_degree as f64 * scale).round() as usize).max(8)
}

fn fingerprint(name: &str) -> u64 {
    name.bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x1000_0000_01b3))
}

/// Builds an uncertain graph from generated structure plus a probability
/// model. Exposed for custom generators.
pub fn attach_probabilities(
    n: usize,
    edges: &[(u32, u32)],
    model: ProbabilityModel,
    rng: &mut Xoshiro256pp,
) -> UncertainGraph {
    let risks = model.draw_many(n, rng);
    let wedges: Vec<(u32, u32, f64)> =
        edges.iter().map(|&(u, v)| (u, v, model.draw(rng))).collect();
    from_parts(&risks, &wedges, DuplicateEdgePolicy::KeepMax)
        // xlint: allow(panic-hygiene) — generators emit in-range ids
        // and the model draws probabilities in `[0, 1]`, so the build
        // cannot fail.
        .expect("generators produce valid structure")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::GraphStats;

    #[test]
    fn scaled_instances_match_shape() {
        // Full-scale generation for every dataset is exercised by the
        // bench harness; unit tests use 10% scale for speed.
        for ds in Dataset::ALL {
            let g = ds.generate_scaled(42, 0.05);
            let spec = ds.spec();
            let s = GraphStats::compute(&g);
            let target_n = (spec.nodes as f64 * 0.05).round().max(16.0);
            assert!(
                (s.nodes as f64) >= target_n * 0.9,
                "{ds}: nodes {} vs target {target_n}",
                s.nodes
            );
            // Edge counts within 20% of the scaled target (dedup slack).
            let target_m = (spec.edges as f64 * 0.05).round().max(16.0);
            assert!(
                (s.edges as f64) > target_m * 0.8,
                "{ds}: edges {} vs target {target_m}",
                s.edges
            );
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn interbank_full_scale_is_cheap_and_accurate() {
        let g = Dataset::Interbank.generate(7);
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 125);
        assert_eq!(s.edges, 249);
    }

    #[test]
    fn guarantee_has_super_hub() {
        let g = Dataset::Guarantee.generate_scaled(7, 0.1);
        let s = GraphStats::compute(&g);
        // Hub absorbs a large share, as in Table 2 (14,362 of 35,987).
        assert!(
            s.max_degree as f64 > 0.1 * s.edges as f64,
            "max degree {} too small for {} edges",
            s.max_degree,
            s.edges
        );
    }

    #[test]
    fn financial_datasets_have_skewed_probabilities() {
        let g = Dataset::Interbank.generate(3);
        let s = GraphStats::compute(&g);
        assert!(s.mean_self_risk < 0.3, "financial risks too high: {}", s.mean_self_risk);
        let b = Dataset::Citation.generate_scaled(3, 0.2);
        let sb = GraphStats::compute(&b);
        assert!(
            (sb.mean_self_risk - 0.5).abs() < 0.05,
            "benchmark risks should be uniform: {}",
            sb.mean_self_risk
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Citation.generate_scaled(9, 0.1);
        let b = Dataset::Citation.generate_scaled(9, 0.1);
        assert_eq!(a, b);
        let c = Dataset::Citation.generate_scaled(10, 0.1);
        assert_ne!(a, c);
    }

    #[test]
    fn datasets_differ_from_each_other() {
        let a = Dataset::Bitcoin.generate_scaled(1, 0.05);
        let b = Dataset::Facebook.generate_scaled(1, 0.05);
        assert_ne!(a, b);
    }

    #[test]
    fn display_names_match_table2() {
        assert_eq!(Dataset::P2P.to_string(), "P2P");
        assert_eq!(Dataset::Guarantee.to_string(), "Guarantee");
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_bad_scale() {
        Dataset::Citation.generate_scaled(1, 0.0);
    }

    #[test]
    fn uniform_control_builds() {
        let g = uniform_control(100, 300, 5);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 300);
    }
}
