//! # vulnds-datasets — synthetic workloads matching the paper's Table 2
//!
//! The paper evaluates on three proprietary financial networks and five
//! public benchmark graphs, none of which can be redistributed here.
//! This crate regenerates graphs with the *published* shapes — node and
//! edge counts, degree skew, hub structure, probability distributions —
//! so every experiment in the bench harness runs out of the box.
//!
//! ```
//! use vulnds_datasets::Dataset;
//!
//! let g = Dataset::Interbank.generate(42);
//! assert_eq!(g.num_nodes(), 125); // Table 2
//! assert_eq!(g.num_edges(), 249);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod gen;
pub mod probs;
pub mod temporal;
pub mod weighted;

pub use catalog::{attach_probabilities, uniform_control, Dataset, DatasetSpec};
pub use probs::ProbabilityModel;
pub use temporal::{replay, update_stream, UpdateEvent, UpdateStreamParams};
pub use weighted::AliasTable;
