//! Weighted discrete sampling via Walker's alias method.
//!
//! The Chung-Lu generator draws `O(m)` endpoint samples from a fixed
//! weight distribution; the alias table makes each draw `O(1)` after
//! `O(n)` preprocessing.

use vulnds_sampling::Xoshiro256pp;

/// Alias table over indices `0..n` with probabilities proportional to the
/// provided weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table. Weights must be non-negative, finite, with a
    /// positive sum.
    ///
    /// # Panics
    /// Panics on empty input, negative/non-finite weights, or zero total.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        let n = weights.len();
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weight {w} invalid");
                w
            })
            .sum();
        assert!(total > 0.0, "total weight must be positive");

        // Scaled probabilities; Vose's stable construction.
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers become certain columns.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` if the table is empty (never: construction requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> usize {
        let i = rng.next_bounded(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0; 4]);
        let mut rng = Xoshiro256pp::new(1);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / n as f64;
            assert!((f - 0.25).abs() < 0.02, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_respected() {
        let t = AliasTable::new(&[8.0, 1.0, 1.0]);
        let mut rng = Xoshiro256pp::new(2);
        let n = 50_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - 0.8).abs() < 0.02, "freq {f0}");
    }

    #[test]
    fn zero_weight_entries_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]);
        let mut rng = Xoshiro256pp::new(3);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[0.5]);
        let mut rng = Xoshiro256pp::new(4);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_panics() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn negative_weight_panics() {
        AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_panics() {
        AliasTable::new(&[0.0, 0.0]);
    }
}
