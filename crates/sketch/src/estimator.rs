//! Estimators built on top of the bottom-k machinery.

use crate::bottomk::BottomK;
use crate::hash::UnitHasher;

/// Streaming distinct-count estimator over `u64` keys.
///
/// Thin convenience wrapper pairing a [`UnitHasher`] with a [`BottomK`]
/// sketch; exact below saturation, estimated above.
#[derive(Debug, Clone)]
pub struct DistinctCounter {
    hasher: UnitHasher,
    sketch: BottomK,
    observed: usize,
}

impl DistinctCounter {
    /// Creates a counter with sketch parameter `bk` and the given seed.
    pub fn new(bk: usize, seed: u64) -> Self {
        DistinctCounter { hasher: UnitHasher::new(seed), sketch: BottomK::new(bk), observed: 0 }
    }

    /// Observes a key (duplicates allowed).
    pub fn observe(&mut self, key: u64) {
        self.observed += 1;
        self.sketch.insert(self.hasher.hash_unit(key));
    }

    /// Total observations, including duplicates.
    pub fn observations(&self) -> usize {
        self.observed
    }

    /// Estimated number of distinct keys.
    ///
    /// Before the sketch saturates the retained count is exact, so it is
    /// returned directly. Note this under-reports if duplicate keys were
    /// observed pre-saturation (the sketch retains duplicate hash values);
    /// this matches the bottom-k contract, which assumes distinct inputs.
    pub fn estimate(&self) -> f64 {
        self.sketch.distinct_estimate().unwrap_or(self.sketch.len() as f64)
    }

    /// Access to the underlying sketch.
    pub fn sketch(&self) -> &BottomK {
        &self.sketch
    }
}

/// Estimates, from a saturated per-node counter in BSRBK, the default
/// probability of the node: `p̂(v) = (bk − 1) / (h · t)` where `h` is the
/// hash value of the `bk`-th sample in which `v` defaulted and `t` the
/// total sample budget (paper, proof of Theorem 6).
///
/// Returns a value clamped into `[0, 1]`.
pub fn bottomk_default_probability(bk: usize, kth_hash: f64, t: usize) -> f64 {
    assert!(bk >= 1 && t >= 1, "bk and t must be positive");
    assert!(kth_hash > 0.0 && kth_hash < 1.0, "hash must lie in (0,1)");
    (((bk as f64) - 1.0) / (kth_hash * t as f64)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_saturation() {
        let mut c = DistinctCounter::new(16, 1);
        for k in 0..10u64 {
            c.observe(k);
        }
        assert_eq!(c.estimate(), 10.0);
        assert_eq!(c.observations(), 10);
    }

    #[test]
    fn estimates_above_saturation() {
        let mut c = DistinctCounter::new(64, 2);
        for k in 0..30_000u64 {
            c.observe(k);
            c.observe(k); // duplicates post-saturation don't change anything
        }
        let est = c.estimate();
        assert!((est - 30_000.0).abs() / 30_000.0 < 0.5, "est = {est}");
        assert_eq!(c.observations(), 60_000);
    }

    #[test]
    fn default_probability_formula() {
        // bk = 5, 5th hit at hash 0.5, t = 100 → (5-1)/(0.5·100) = 0.08
        let p = bottomk_default_probability(5, 0.5, 100);
        assert!((p - 0.08).abs() < 1e-12);
    }

    #[test]
    fn default_probability_clamped() {
        // Tiny hash would give > 1; clamp.
        assert_eq!(bottomk_default_probability(64, 1e-9, 10), 1.0);
    }

    #[test]
    #[should_panic(expected = "hash must lie in (0,1)")]
    fn default_probability_rejects_bad_hash() {
        bottomk_default_probability(4, 1.0, 10);
    }

    #[test]
    fn higher_kth_hash_means_lower_probability() {
        // Monotonicity used by Theorem 6: whoever saturates first (smaller
        // kth hash) has the larger estimate.
        let p_small = bottomk_default_probability(8, 0.2, 1000);
        let p_large = bottomk_default_probability(8, 0.4, 1000);
        assert!(p_small > p_large);
    }
}
