//! # vulnds-sketch — bottom-k sketches
//!
//! The bottom-k sketch (Cohen & Kaplan, PODC 2007) underlies the early
//! stopping condition of the paper's BSRBK algorithm (§3.3): visiting
//! samples in ascending hash order, the first candidate node that defaults
//! in `bk` samples is exactly the node whose bottom-k sketch has the
//! smallest `bk`-th order statistic, hence the highest estimated default
//! probability (Theorem 6).
//!
//! ```
//! use vulnds_sketch::{BottomK, UnitHasher};
//!
//! let h = UnitHasher::new(7);
//! let mut sketch = BottomK::new(16);
//! for key in 0..10_000u64 {
//!     sketch.insert(h.hash_unit(key));
//! }
//! let est = sketch.distinct_estimate().unwrap();
//! assert!((est - 10_000.0).abs() / 10_000.0 < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bottomk;
pub mod estimator;
pub mod hash;

pub use bottomk::BottomK;
pub use estimator::{bottomk_default_probability, DistinctCounter};
pub use hash::{hash_order, UnitHasher};
