//! Pseudo-random hashing to the unit interval.
//!
//! The bottom-k sketch of Cohen & Kaplan assumes a "truly random" hash
//! `h : U → (0, 1)` with no collisions. We approximate it with a seeded
//! SplitMix64 finalizer, which passes the usual avalanche tests and is
//! collision-free on distinct 64-bit inputs with overwhelming probability
//! (collisions of the 64-bit output are ~2⁻⁶⁴ per pair; the unit-interval
//! mapping keeps 53 bits).

/// A seeded hash function mapping `u64` keys to the open unit interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitHasher {
    seed: u64,
}

impl UnitHasher {
    /// Creates a hasher with the given seed. Two hashers with the same seed
    /// are identical functions — required so that the same sample id gets
    /// the same rank across algorithm phases.
    pub fn new(seed: u64) -> Self {
        UnitHasher { seed }
    }

    /// The raw 64-bit hash of `key` (SplitMix64 finalizer over `key ⊕ seed`).
    #[inline]
    pub fn hash_u64(&self, key: u64) -> u64 {
        let mut z = key ^ self.seed;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Hash of `key` mapped into the **open** interval `(0, 1)`.
    ///
    /// Uses the top 53 bits for the mantissa and nudges zero up to the
    /// smallest representable step so the bottom-k estimator
    /// `(bk − 1) / L(A, bk)` can never divide by zero.
    #[inline]
    pub fn hash_unit(&self, key: u64) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        let bits = self.hash_u64(key) >> 11; // 53 significant bits
        let x = bits as f64 * SCALE;
        if x == 0.0 {
            SCALE
        } else {
            x
        }
    }
}

/// Hashes the integers `0..t` and returns a permutation of `0..t` ordered
/// by ascending hash value.
///
/// This is exactly the order in which the BSRBK algorithm materializes
/// samples: it "sorts the samples in ascending order based on the hash
/// value" (paper §3.3) without materializing them first. `O(t log t)`.
pub fn hash_order(hasher: &UnitHasher, t: usize) -> Vec<u32> {
    // Keys are cached up front: recomputing two hashes inside the
    // comparator costs `2·t·log t` hash evaluations and dominated query
    // start-up for multi-million-sample budgets.
    let keys: Vec<f64> = (0..t as u64).map(|i| hasher.hash_unit(i)).collect();
    let mut idx: Vec<u32> = (0..t as u32).collect();
    idx.sort_unstable_by(|&a, &b| keys[a as usize].total_cmp(&keys[b as usize]));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let h1 = UnitHasher::new(42);
        let h2 = UnitHasher::new(42);
        for k in 0..100u64 {
            assert_eq!(h1.hash_u64(k), h2.hash_u64(k));
            assert_eq!(h1.hash_unit(k), h2.hash_unit(k));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let h1 = UnitHasher::new(1);
        let h2 = UnitHasher::new(2);
        let same = (0..100u64).filter(|&k| h1.hash_u64(k) == h2.hash_u64(k)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_values_in_open_interval() {
        let h = UnitHasher::new(7);
        for k in 0..10_000u64 {
            let x = h.hash_unit(k);
            assert!(x > 0.0 && x < 1.0, "hash_unit({k}) = {x}");
        }
    }

    #[test]
    fn unit_values_look_uniform() {
        // Mean of U(0,1) is 0.5 with sd 1/sqrt(12n); allow 6 sigma.
        let h = UnitHasher::new(99);
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|k| h.hash_unit(k)).sum::<f64>() / n as f64;
        let sigma = (1.0 / 12.0f64).sqrt() / (n as f64).sqrt();
        assert!((mean - 0.5).abs() < 6.0 * sigma, "mean = {mean}");
    }

    #[test]
    fn no_collisions_on_small_domain() {
        let h = UnitHasher::new(3);
        let mut seen: Vec<u64> = (0..100_000u64).map(|k| h.hash_u64(k)).collect();
        seen.sort_unstable();
        let before = seen.len();
        seen.dedup();
        assert_eq!(seen.len(), before);
    }

    #[test]
    fn hash_order_is_permutation() {
        let h = UnitHasher::new(5);
        let order = hash_order(&h, 1000);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000u32).collect::<Vec<_>>());
    }

    #[test]
    fn hash_order_is_ascending_in_hash() {
        let h = UnitHasher::new(5);
        let order = hash_order(&h, 500);
        for w in order.windows(2) {
            assert!(h.hash_unit(w[0] as u64) <= h.hash_unit(w[1] as u64));
        }
    }

    #[test]
    fn hash_order_empty_and_single() {
        let h = UnitHasher::new(5);
        assert!(hash_order(&h, 0).is_empty());
        assert_eq!(hash_order(&h, 1), vec![0]);
    }
}
