//! Bottom-k sketches for distinct-count estimation (Cohen & Kaplan, PODC'07).
//!
//! Given a multiset `A` whose distinct values are hashed uniformly into
//! `(0, 1)`, the sketch keeps the `bk` smallest hash values. With
//! `L(A, bk)` the `bk`-th smallest hash, the number of distinct values is
//! estimated by `(bk − 1) / L(A, bk)`, with expected relative error
//! `√(2 / (π (bk − 2)))` and coefficient of variation at most
//! `1 / √(bk − 2)`.
//!
//! In BSRBK the sketch plays a slightly different role: samples are visited
//! in ascending hash order, each candidate counts the samples in which it
//! defaults, and the first candidate whose counter reaches `bk` has —
//! implicitly — the bottom-k sketch with the smallest `L(A, bk)`, hence the
//! largest estimated default probability (Theorem 6).

use std::collections::BinaryHeap;

/// Wrapper giving `f64` a total order so it can live in a `BinaryHeap`.
/// Only finite values are ever inserted (hash outputs are in `(0, 1)`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Finite(f64);

impl Eq for Finite {}

impl PartialOrd for Finite {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Finite {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A bottom-k sketch over hash values in `(0, 1)`.
#[derive(Debug, Clone)]
pub struct BottomK {
    bk: usize,
    // Max-heap of the bk smallest values seen: the root is L(A, bk) once
    // saturated, and insertion is O(log bk).
    heap: BinaryHeap<Finite>,
}

impl BottomK {
    /// Creates a sketch keeping the `bk` smallest hash values.
    ///
    /// # Panics
    /// Panics if `bk == 0`.
    pub fn new(bk: usize) -> Self {
        assert!(bk > 0, "bottom-k parameter must be positive");
        BottomK { bk, heap: BinaryHeap::with_capacity(bk + 1) }
    }

    /// The sketch parameter `bk`.
    pub fn bk(&self) -> usize {
        self.bk
    }

    /// Number of values currently retained (`min(inserted distinct, bk)`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no value has been inserted.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` once `bk` values have been retained, i.e. `L(A, bk)` exists.
    pub fn is_saturated(&self) -> bool {
        self.heap.len() == self.bk
    }

    /// Offers a hash value to the sketch.
    ///
    /// Returns `true` if the value was retained (it was among the `bk`
    /// smallest **distinct** values seen so far). Re-inserting a retained
    /// value is a no-op: bottom-k sketches summarize the *set* of hash
    /// values, so duplicates must not occupy extra slots.
    ///
    /// # Panics
    /// Panics in debug builds if `value` is outside `(0, 1)`.
    pub fn insert(&mut self, value: f64) -> bool {
        debug_assert!(value > 0.0 && value < 1.0, "hash value {value} outside (0,1)");
        if self.heap.len() == self.bk && self.heap.peek().is_some_and(|&Finite(top)| value >= top) {
            return false; // not among the bk smallest; duplicates of larger values irrelevant
        }
        // O(bk) duplicate scan; bk is small (paper uses 4..64).
        if self.heap.iter().any(|&Finite(x)| x == value) {
            return false;
        }
        if self.heap.len() == self.bk {
            self.heap.pop();
        }
        self.heap.push(Finite(value));
        true
    }

    /// The `bk`-th smallest value `L(A, bk)`, if the sketch is saturated.
    pub fn kth_smallest(&self) -> Option<f64> {
        if self.is_saturated() {
            self.heap.peek().map(|&Finite(v)| v)
        } else {
            None
        }
    }

    /// Estimated number of distinct values: `(bk − 1) / L(A, bk)`.
    ///
    /// Returns `None` until the sketch is saturated (fewer than `bk`
    /// distinct values seen means the exact count is `len()`).
    pub fn distinct_estimate(&self) -> Option<f64> {
        self.kth_smallest().map(|l| (self.bk as f64 - 1.0) / l)
    }

    /// Expected relative error `√(2 / (π (bk − 2)))` of the estimator.
    /// `None` for `bk ≤ 2` where the formula is undefined.
    pub fn expected_relative_error(&self) -> Option<f64> {
        (self.bk > 2).then(|| (2.0 / (std::f64::consts::PI * (self.bk as f64 - 2.0))).sqrt())
    }

    /// Upper bound on the coefficient of variation: `1 / √(bk − 2)`.
    /// `None` for `bk ≤ 2`.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        (self.bk > 2).then(|| 1.0 / (self.bk as f64 - 2.0).sqrt())
    }

    /// Merges another sketch into this one (union of the underlying sets).
    /// Both sketches must have the same `bk`.
    ///
    /// # Panics
    /// Panics if the parameters differ.
    pub fn merge(&mut self, other: &BottomK) {
        assert_eq!(self.bk, other.bk, "cannot merge sketches with different bk");
        for &Finite(v) in other.heap.iter() {
            self.insert(v);
        }
    }

    /// The retained values in ascending order.
    pub fn sorted_values(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.heap.iter().map(|&Finite(x)| x).collect();
        v.sort_unstable_by(|a, b| a.total_cmp(b));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::UnitHasher;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bk_panics() {
        let _ = BottomK::new(0);
    }

    #[test]
    fn keeps_smallest_values() {
        let mut s = BottomK::new(3);
        for v in [0.9, 0.1, 0.5, 0.3, 0.7, 0.2] {
            s.insert(v);
        }
        assert_eq!(s.sorted_values(), vec![0.1, 0.2, 0.3]);
        assert_eq!(s.kth_smallest(), Some(0.3));
    }

    #[test]
    fn unsaturated_sketch_has_no_estimate() {
        let mut s = BottomK::new(4);
        s.insert(0.5);
        s.insert(0.25);
        assert!(!s.is_saturated());
        assert_eq!(s.kth_smallest(), None);
        assert_eq!(s.distinct_estimate(), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn insert_reports_retention() {
        let mut s = BottomK::new(2);
        assert!(s.insert(0.5));
        assert!(s.insert(0.6));
        assert!(!s.insert(0.7)); // larger than both retained
        assert!(s.insert(0.1)); // evicts 0.6
        assert_eq!(s.sorted_values(), vec![0.1, 0.5]);
    }

    #[test]
    fn estimate_close_to_truth() {
        // Hash 0..n distinct keys; estimate should be within a few expected
        // relative errors of n.
        let h = UnitHasher::new(11);
        let n = 20_000u64;
        let mut s = BottomK::new(64);
        for k in 0..n {
            s.insert(h.hash_unit(k));
        }
        let est = s.distinct_estimate().unwrap();
        let rel_err = (est - n as f64).abs() / n as f64;
        let expected = s.expected_relative_error().unwrap();
        assert!(rel_err < 5.0 * expected, "rel_err = {rel_err}, expected ≈ {expected}");
    }

    #[test]
    fn estimate_improves_with_bk() {
        let h = UnitHasher::new(13);
        let n = 50_000u64;
        let mut errs = Vec::new();
        for bk in [8usize, 64, 512] {
            let mut s = BottomK::new(bk);
            for k in 0..n {
                s.insert(h.hash_unit(k));
            }
            let est = s.distinct_estimate().unwrap();
            errs.push((est - n as f64).abs() / n as f64);
        }
        // Error with bk = 512 should beat bk = 8 (allowing rare flukes by
        // comparing against twice the value).
        assert!(errs[2] < errs[0] * 2.0 + 0.01, "errors: {errs:?}");
    }

    #[test]
    fn merge_equals_union() {
        let h = UnitHasher::new(17);
        let mut a = BottomK::new(16);
        let mut b = BottomK::new(16);
        let mut all = BottomK::new(16);
        for k in 0..1000u64 {
            let v = h.hash_unit(k);
            if k % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
            all.insert(v);
        }
        a.merge(&b);
        assert_eq!(a.sorted_values(), all.sorted_values());
    }

    #[test]
    #[should_panic(expected = "different bk")]
    fn merge_requires_same_bk() {
        let mut a = BottomK::new(4);
        let b = BottomK::new(8);
        a.merge(&b);
    }

    #[test]
    fn error_formulas() {
        let s = BottomK::new(18);
        // √(2/(π·16)) ≈ 0.1995
        assert!((s.expected_relative_error().unwrap() - 0.1995).abs() < 1e-3);
        assert!((s.coefficient_of_variation().unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(BottomK::new(2).expected_relative_error(), None);
        assert_eq!(BottomK::new(1).coefficient_of_variation(), None);
    }

    #[test]
    fn duplicate_values_do_not_inflate() {
        // The sketch summarizes the *set* of hash values: re-inserting a
        // retained value must not consume another slot.
        let mut s = BottomK::new(3);
        assert!(s.insert(0.4));
        for _ in 0..10 {
            assert!(!s.insert(0.4));
        }
        assert_eq!(s.len(), 1);
        assert!(!s.is_saturated());
        s.insert(0.2);
        s.insert(0.3);
        assert_eq!(s.kth_smallest(), Some(0.4));
    }

    #[test]
    fn duplicates_of_evicted_values_stay_out() {
        let mut s = BottomK::new(2);
        s.insert(0.5);
        s.insert(0.6);
        s.insert(0.1); // evicts 0.6
        assert!(!s.insert(0.6));
        assert_eq!(s.sorted_values(), vec![0.1, 0.5]);
    }
}
