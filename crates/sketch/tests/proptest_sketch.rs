//! Randomized property tests for the bottom-k sketch machinery, on the
//! shared deterministic test kit (`ugraph::testkit`, a dev-dependency —
//! the crate itself stays dependency-free).

use ugraph::testkit::{check, TestRng};
use vulnds_sketch::{hash_order, BottomK, UnitHasher};

/// Values strictly inside `(0.0001, 0.9999)`, like the old proptest
/// strategy.
fn unit_values(rng: &mut TestRng, max_len: usize) -> Vec<f64> {
    let len = rng.range_usize(1, max_len.max(1));
    (0..len).map(|_| 0.0001 + rng.next_f64() * 0.9998).collect()
}

/// The sketch retains exactly the bk smallest distinct values.
#[test]
fn retains_bk_smallest() {
    check(64, |rng| {
        let values = unit_values(rng, 200);
        let bk = rng.range_usize(1, 32);
        let mut sketch = BottomK::new(bk);
        for &v in &values {
            sketch.insert(v);
        }
        let mut distinct = values.clone();
        distinct.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        distinct.dedup();
        distinct.truncate(bk);
        assert_eq!(sketch.sorted_values(), distinct);
    });
}

/// Insertion order never matters.
#[test]
fn order_invariant() {
    check(64, |rng| {
        let mut values = unit_values(rng, 100);
        let bk = rng.range_usize(1, 16);
        let mut a = BottomK::new(bk);
        for &v in &values {
            a.insert(v);
        }
        values.reverse();
        let mut b = BottomK::new(bk);
        for &v in &values {
            b.insert(v);
        }
        assert_eq!(a.sorted_values(), b.sorted_values());
    });
}

/// Merging sketches equals sketching the concatenation.
#[test]
fn merge_is_union() {
    check(64, |rng| {
        let xs = unit_values(rng, 80);
        let ys = unit_values(rng, 80);
        let bk = rng.range_usize(1, 16);
        let mut a = BottomK::new(bk);
        for &v in &xs {
            a.insert(v);
        }
        let mut b = BottomK::new(bk);
        for &v in &ys {
            b.insert(v);
        }
        a.merge(&b);
        let mut all = BottomK::new(bk);
        for &v in xs.iter().chain(&ys) {
            all.insert(v);
        }
        assert_eq!(a.sorted_values(), all.sorted_values());
    });
}

/// Distinct-count estimates stay within a generous multiplicative band of
/// the truth once saturated.
#[test]
fn estimate_within_band() {
    check(50, |rng| {
        let n = 500 + rng.next_bounded(4500);
        let seed = rng.next_bounded(50);
        let h = UnitHasher::new(seed);
        let mut sketch = BottomK::new(64);
        for k in 0..n {
            sketch.insert(h.hash_unit(k));
        }
        let est = sketch.distinct_estimate().unwrap();
        assert!(est > n as f64 * 0.5 && est < n as f64 * 2.0, "n = {n}, est = {est}");
    });
}

/// hash_order is always a permutation, stable across calls.
#[test]
fn hash_order_permutation() {
    check(64, |rng| {
        let t = rng.next_bounded(500) as usize;
        let h = UnitHasher::new(rng.next_bounded(100));
        let order = hash_order(&h, t);
        assert_eq!(order.clone(), hash_order(&h, t));
        let mut sorted = order;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..t as u32).collect::<Vec<_>>());
    });
}

/// Unit hashes always land strictly inside `(0, 1)`, for any seed/key.
#[test]
fn hash_unit_range() {
    check(256, |rng| {
        let seed = rng.next_u64();
        let key = rng.next_u64();
        let x = UnitHasher::new(seed).hash_unit(key);
        assert!(x > 0.0 && x < 1.0, "{x}");
    });
}
