//! Property tests for the bottom-k sketch machinery.

use proptest::prelude::*;
use vulnds_sketch::{hash_order, BottomK, UnitHasher};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sketch retains exactly the bk smallest distinct values.
    #[test]
    fn retains_bk_smallest(values in proptest::collection::vec(0.0001f64..0.9999, 1..200),
                           bk in 1usize..=32) {
        let mut sketch = BottomK::new(bk);
        for &v in &values {
            sketch.insert(v);
        }
        let mut distinct = values.clone();
        distinct.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        distinct.dedup();
        distinct.truncate(bk);
        prop_assert_eq!(sketch.sorted_values(), distinct);
    }

    /// Insertion order never matters.
    #[test]
    fn order_invariant(mut values in proptest::collection::vec(0.0001f64..0.9999, 1..100),
                       bk in 1usize..=16) {
        let mut a = BottomK::new(bk);
        for &v in &values {
            a.insert(v);
        }
        values.reverse();
        let mut b = BottomK::new(bk);
        for &v in &values {
            b.insert(v);
        }
        prop_assert_eq!(a.sorted_values(), b.sorted_values());
    }

    /// Merging sketches equals sketching the concatenation.
    #[test]
    fn merge_is_union(xs in proptest::collection::vec(0.0001f64..0.9999, 0..80),
                      ys in proptest::collection::vec(0.0001f64..0.9999, 0..80),
                      bk in 1usize..=16) {
        let mut a = BottomK::new(bk);
        for &v in &xs {
            a.insert(v);
        }
        let mut b = BottomK::new(bk);
        for &v in &ys {
            b.insert(v);
        }
        a.merge(&b);
        let mut all = BottomK::new(bk);
        for &v in xs.iter().chain(&ys) {
            all.insert(v);
        }
        prop_assert_eq!(a.sorted_values(), all.sorted_values());
    }

    /// Distinct-count estimates stay within a generous multiplicative
    /// band of the truth once saturated.
    #[test]
    fn estimate_within_band(n in 500u64..5000, seed in 0u64..50) {
        let h = UnitHasher::new(seed);
        let mut sketch = BottomK::new(64);
        for k in 0..n {
            sketch.insert(h.hash_unit(k));
        }
        let est = sketch.distinct_estimate().unwrap();
        prop_assert!(est > n as f64 * 0.5 && est < n as f64 * 2.0,
            "n = {n}, est = {est}");
    }

    /// hash_order is always a permutation, stable across calls.
    #[test]
    fn hash_order_permutation(t in 0usize..500, seed in 0u64..100) {
        let h = UnitHasher::new(seed);
        let order = hash_order(&h, t);
        prop_assert_eq!(order.clone(), hash_order(&h, t));
        let mut sorted = order;
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..t as u32).collect::<Vec<_>>());
    }

    /// Unit hashes never collide with themselves under different seeds in
    /// a way that breaks the (0,1) range contract.
    #[test]
    fn hash_unit_range(seed in proptest::num::u64::ANY, key in proptest::num::u64::ANY) {
        let x = UnitHasher::new(seed).hash_unit(key);
        prop_assert!(x > 0.0 && x < 1.0, "{x}");
    }
}
