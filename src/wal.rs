//! Crash-durable write-ahead log for live graph deltas.
//!
//! `vulnds serve --wal <path>` appends every committed [`GraphDelta`]
//! batch to this log **before** applying it, fsyncs (policy-gated), and
//! only then acks the client — so the acked history always survives a
//! crash, and recovery replays exactly the committed prefix.
//!
//! ## On-disk format
//!
//! All integers are little-endian.
//!
//! | section | bytes | contents                                      |
//! |---------|-------|-----------------------------------------------|
//! | header  | 8     | magic `VULNDSW1`                              |
//! | header  | 8     | `base_epoch` — epoch of the base snapshot     |
//! | record  | 4     | `len` — payload length in bytes               |
//! | record  | 8     | `epoch` — epoch this commit produced          |
//! | record  | `len` | [`GraphDelta::encode`] payload                |
//! | record  | 4     | CRC-32 over the epoch and payload bytes       |
//!
//! Records repeat until end of file. A **torn tail** — a record cut
//! short by a crash mid-write, or one whose checksum does not match —
//! ends the committed prefix: [`Wal::recover`] truncates it away and
//! resumes appending at the truncation point, while the read-only
//! [`scan`] just reports it (the `vulnds wal verify` behaviour).
//!
//! ## Compaction
//!
//! [`write_snapshot`] persists the current graph as an
//! [`io_binary`](ugraph::io_binary) file via write-temp / fsync /
//! rename, and [`Wal::rotate`] then resets the log to an empty one
//! whose `base_epoch` is the snapshot's epoch. Startup prefers the
//! snapshot over the original input graph, so replay cost stays
//! proportional to the deltas since the last compaction, not since the
//! beginning of time.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ugraph::{GraphDelta, UncertainGraph};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"VULNDSW1";

/// Header length: magic plus the base-epoch word.
pub const WAL_HEADER_LEN: u64 = 16;

/// Per-record framing overhead: length, epoch, and checksum words.
pub const RECORD_OVERHEAD: u64 = 16;

/// Largest record payload accepted when reading (64 MiB). A corrupt
/// length word must not translate into an unbounded allocation; real
/// delta batches are kilobytes.
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

/// When to fsync the log relative to acking a commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every appended record, before the commit is acked —
    /// the durable default: an acked update survives power loss.
    #[default]
    Always,
    /// Never fsync; the OS flushes on its own schedule. An acked
    /// update survives a process crash (the write hit the page cache)
    /// but not necessarily power loss. For benchmarks and tests.
    Never,
}

impl FsyncPolicy {
    /// Parses a `--fsync` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

/// One committed record read back from the log.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Epoch the commit produced (`base_epoch + position + 1`).
    pub epoch: u64,
    /// The delta batch, decoded from its canonical payload.
    pub delta: GraphDelta,
    /// Byte offset of the record's length word in the file.
    pub offset: u64,
}

/// A tail the committed prefix does not reach: bytes past the last
/// record whose frame is complete and whose checksum matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset the committed prefix ends at (= where the torn
    /// record starts).
    pub offset: u64,
    /// Bytes from `offset` to end of file.
    pub dropped_bytes: u64,
    /// Why the tail does not parse (truncated frame, checksum
    /// mismatch, undecodable payload).
    pub reason: String,
}

/// Everything a read pass learned about a log file.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// The header's base epoch: records apply on top of the snapshot
    /// (or original graph) carrying this epoch.
    pub base_epoch: u64,
    /// The committed records, in log order.
    pub records: Vec<WalRecord>,
    /// The torn tail, if the file does not end on a record boundary.
    pub torn: Option<TornTail>,
    /// Total file length in bytes.
    pub file_len: u64,
}

impl WalScan {
    /// Byte offset the committed prefix ends at — the file length when
    /// the log is clean, the torn record's start otherwise.
    pub fn committed_len(&self) -> u64 {
        self.torn.as_ref().map_or(self.file_len, |t| t.offset)
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads a log file without touching it: committed records plus a
/// description of any torn tail. Errors only on I/O failure or a
/// corrupt **header** — a bad record is a torn tail, not an error,
/// because crash recovery must accept exactly such files.
pub fn scan(path: impl AsRef<Path>) -> io::Result<WalScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    parse(&bytes)
}

fn parse(bytes: &[u8]) -> io::Result<WalScan> {
    if bytes.len() < WAL_HEADER_LEN as usize {
        return Err(bad_data("WAL shorter than its header"));
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(bad_data("bad WAL magic (not a VULNDSW1 file)"));
    }
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[8..16]);
    let base_epoch = u64::from_le_bytes(word);

    let mut records = Vec::new();
    let mut offset = WAL_HEADER_LEN as usize;
    let mut torn = None;
    while offset < bytes.len() {
        match parse_record(&bytes[offset..]) {
            Ok((record_len, epoch, delta)) => {
                records.push(WalRecord { epoch, delta, offset: offset as u64 });
                offset += record_len;
            }
            Err(reason) => {
                torn = Some(TornTail {
                    offset: offset as u64,
                    dropped_bytes: (bytes.len() - offset) as u64,
                    reason,
                });
                break;
            }
        }
    }
    Ok(WalScan { base_epoch, records, torn, file_len: bytes.len() as u64 })
}

/// Parses one record at the start of `bytes`; the error string is the
/// torn-tail reason.
fn parse_record(bytes: &[u8]) -> Result<(usize, u64, GraphDelta), String> {
    if bytes.len() < RECORD_OVERHEAD as usize {
        return Err(format!("truncated record frame ({} bytes)", bytes.len()));
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len > MAX_RECORD_BYTES {
        return Err(format!("implausible record length {len}"));
    }
    let total = RECORD_OVERHEAD as usize + len as usize;
    if bytes.len() < total {
        return Err(format!("truncated record body ({} of {total} bytes)", bytes.len()));
    }
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[4..12]);
    let epoch = u64::from_le_bytes(word);
    let payload = &bytes[12..12 + len as usize];
    let stored = u32::from_le_bytes([
        bytes[total - 4],
        bytes[total - 3],
        bytes[total - 2],
        bytes[total - 1],
    ]);
    let computed = record_crc(epoch, payload);
    if stored != computed {
        return Err(format!(
            "checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
        ));
    }
    let delta = GraphDelta::decode(payload).map_err(|e| format!("undecodable payload: {e}"))?;
    Ok((total, epoch, delta))
}

/// The record checksum: CRC-32 over the epoch word followed by the
/// payload.
fn record_crc(epoch: u64, payload: &[u8]) -> u32 {
    let mut crc = ugraph::Crc32::new();
    crc.update(&epoch.to_le_bytes());
    crc.update(payload);
    crc.finish()
}

/// An open, appendable log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    fsync: FsyncPolicy,
    base_epoch: u64,
    records: u64,
    /// Records appended since creation or the last [`Wal::rotate`] —
    /// the compaction trigger counter.
    since_rotate: u64,
}

impl Wal {
    /// Creates a fresh log at `path` (truncating anything there),
    /// writes the header, and syncs it.
    pub fn create(path: impl AsRef<Path>, base_epoch: u64, fsync: FsyncPolicy) -> io::Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(&path)?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&base_epoch.to_le_bytes())?;
        sync(&file, fsync)?;
        Ok(Wal { file, path, fsync, base_epoch, records: 0, since_rotate: 0 })
    }

    /// Opens the log at `path` for appending, creating it (base epoch
    /// 0) when missing. A torn tail is truncated away — that is the
    /// crash-recovery contract: the file afterwards holds exactly the
    /// committed prefix. Returns the scan so the caller can replay the
    /// records.
    pub fn recover(path: impl AsRef<Path>, fsync: FsyncPolicy) -> io::Result<(Wal, WalScan)> {
        let path_buf = path.as_ref().to_path_buf();
        if !path_buf.exists() {
            let wal = Wal::create(&path_buf, 0, fsync)?;
            let scan = WalScan {
                base_epoch: 0,
                records: Vec::new(),
                torn: None,
                file_len: WAL_HEADER_LEN,
            };
            return Ok((wal, scan));
        }
        let scan = scan(&path_buf)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&path_buf)?;
        if scan.torn.is_some() {
            file.set_len(scan.committed_len())?;
            sync(&file, fsync)?;
        }
        file.seek(SeekFrom::End(0))?;
        let records = scan.records.len() as u64;
        let wal = Wal {
            file,
            path: path_buf,
            fsync,
            base_epoch: scan.base_epoch,
            records,
            since_rotate: records,
        };
        Ok((wal, scan))
    }

    /// Appends one committed delta and makes it durable per the fsync
    /// policy. `epoch` is the epoch the commit produces.
    pub fn append(&mut self, epoch: u64, delta: &GraphDelta) -> io::Result<()> {
        let payload = delta.encode();
        let mut frame = Vec::with_capacity(RECORD_OVERHEAD as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&epoch.to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&record_crc(epoch, &payload).to_le_bytes());
        self.file.write_all(&frame)?;
        sync(&self.file, self.fsync)?;
        self.records += 1;
        self.since_rotate += 1;
        Ok(())
    }

    /// Resets the log to an empty one whose base epoch is
    /// `new_base_epoch` — the compaction step after [`write_snapshot`]
    /// persisted the graph at that epoch.
    pub fn rotate(&mut self, new_base_epoch: u64) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(WAL_MAGIC)?;
        self.file.write_all(&new_base_epoch.to_le_bytes())?;
        self.file.set_len(WAL_HEADER_LEN)?;
        sync(&self.file, self.fsync)?;
        self.base_epoch = new_base_epoch;
        self.since_rotate = 0;
        Ok(())
    }

    /// Total records in the log (recovered plus appended).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records appended since the last rotation (the compaction
    /// trigger).
    pub fn since_rotate(&self) -> u64 {
        self.since_rotate
    }

    /// The header's base epoch.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn sync(file: &File, policy: FsyncPolicy) -> io::Result<()> {
    match policy {
        FsyncPolicy::Always => file.sync_data(),
        FsyncPolicy::Never => Ok(()),
    }
}

/// The compaction snapshot path convention: the log path with
/// `.snapshot` appended (`deltas.wal` → `deltas.wal.snapshot`).
pub fn snapshot_path(wal_path: impl AsRef<Path>) -> PathBuf {
    let mut os = wal_path.as_ref().as_os_str().to_os_string();
    os.push(".snapshot");
    PathBuf::from(os)
}

/// Durably persists `graph` as a checksummed
/// [`io_binary`](ugraph::io_binary) snapshot at `path`: written to a
/// temp sibling, fsynced, then renamed into place, so a crash leaves
/// either the old snapshot or the new one — never a torn file.
pub fn write_snapshot(graph: &UncertainGraph, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = File::create(&tmp)?;
        let mut body = Vec::new();
        ugraph::io_binary::write_binary(graph, &mut body)
            .map_err(|e| bad_data(format!("encode snapshot: {e}")))?;
        file.write_all(&body)?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugraph::{from_parts, DuplicateEdgePolicy, EdgeId, NodeId};

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vulnds-wal-test-{}-{name}", std::process::id()));
        p
    }

    fn sample_delta(i: u32) -> GraphDelta {
        GraphDelta::default()
            .set_self_risk(NodeId(i), 0.25 + f64::from(i) * 0.01)
            .set_edge_prob(EdgeId(i), 0.5)
    }

    #[test]
    fn round_trips_records_bit_identically() {
        let path = tmp_path("roundtrip");
        let deltas: Vec<GraphDelta> = (0..5).map(sample_delta).collect();
        {
            let mut wal = Wal::create(&path, 0, FsyncPolicy::Never).unwrap();
            for (i, d) in deltas.iter().enumerate() {
                wal.append(i as u64 + 1, d).unwrap();
            }
            assert_eq!(wal.records(), 5);
        }
        let scan = scan(&path).unwrap();
        assert_eq!(scan.base_epoch, 0);
        assert!(scan.torn.is_none());
        assert_eq!(scan.records.len(), 5);
        for (i, r) in scan.records.iter().enumerate() {
            assert_eq!(r.epoch, i as u64 + 1);
            assert_eq!(&r.delta, &deltas[i]);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recovery_truncates_a_torn_tail_at_every_cut_point() {
        let base = tmp_path("torn");
        let deltas: Vec<GraphDelta> = (0..3).map(sample_delta).collect();
        {
            let mut wal = Wal::create(&base, 0, FsyncPolicy::Never).unwrap();
            for (i, d) in deltas.iter().enumerate() {
                wal.append(i as u64 + 1, d).unwrap();
            }
        }
        let full = std::fs::read(&base).unwrap();
        // Cut the file at every byte length from the header to full:
        // recovery must keep exactly the records whose frames fit.
        for cut in (WAL_HEADER_LEN as usize)..full.len() {
            std::fs::write(&base, &full[..cut]).unwrap();
            let (wal, scan) = Wal::recover(&base, FsyncPolicy::Never).unwrap();
            let whole: Vec<&GraphDelta> = scan.records.iter().map(|r| &r.delta).collect();
            assert!(whole.len() <= deltas.len());
            for (i, d) in whole.iter().enumerate() {
                assert_eq!(*d, &deltas[i], "cut at {cut}");
            }
            // The torn tail is gone from disk: a second scan is clean.
            drop(wal);
            let rescan = self::scan(&base).unwrap();
            assert!(rescan.torn.is_none(), "cut at {cut} left a torn tail behind");
            assert_eq!(rescan.records.len(), whole.len());
        }
        std::fs::remove_file(&base).unwrap();
    }

    #[test]
    fn corrupted_byte_is_caught_by_the_checksum() {
        let path = tmp_path("corrupt");
        {
            let mut wal = Wal::create(&path, 0, FsyncPolicy::Never).unwrap();
            wal.append(1, &sample_delta(0)).unwrap();
            wal.append(2, &sample_delta(1)).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the FIRST record.
        let hit = WAL_HEADER_LEN as usize + 13;
        bytes[hit] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan(&path).unwrap();
        // The corruption ends the committed prefix immediately — the
        // intact second record is unreachable behind it by design.
        assert_eq!(scan.records.len(), 0);
        let torn = scan.torn.expect("corruption must be reported");
        assert_eq!(torn.offset, WAL_HEADER_LEN);
        assert!(torn.reason.contains("checksum"), "{}", torn.reason);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_resumes_after_recovery() {
        let path = tmp_path("resume");
        {
            let mut wal = Wal::create(&path, 0, FsyncPolicy::Never).unwrap();
            wal.append(1, &sample_delta(0)).unwrap();
        }
        // Simulate a torn half-record then recover and keep appending.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[7, 0, 0, 0, 9, 9]);
        std::fs::write(&path, &bytes).unwrap();
        {
            let (mut wal, scan) = Wal::recover(&path, FsyncPolicy::Never).unwrap();
            assert_eq!(scan.records.len(), 1);
            assert!(scan.torn.is_some());
            wal.append(2, &sample_delta(1)).unwrap();
        }
        let scan = scan(&path).unwrap();
        assert!(scan.torn.is_none());
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].epoch, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rotation_resets_the_log_to_a_new_base() {
        let path = tmp_path("rotate");
        let mut wal = Wal::create(&path, 0, FsyncPolicy::Never).unwrap();
        for i in 0..4 {
            wal.append(i + 1, &sample_delta(i as u32)).unwrap();
        }
        assert_eq!(wal.since_rotate(), 4);
        wal.rotate(4).unwrap();
        assert_eq!(wal.since_rotate(), 0);
        wal.append(5, &sample_delta(9)).unwrap();
        drop(wal);
        let scan = scan(&path).unwrap();
        assert_eq!(scan.base_epoch, 4);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.records[0].epoch, 5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_write_is_atomic_and_loadable() {
        let path = tmp_path("snapshot");
        let g =
            from_parts(&[0.1, 0.2, 0.3], &[(0, 1, 0.4), (1, 2, 0.5)], DuplicateEdgePolicy::Error)
                .unwrap();
        write_snapshot(&g, &path).unwrap();
        let loaded = ugraph::io_binary::load_binary(&path).unwrap();
        assert_eq!(loaded.num_nodes(), 3);
        assert_eq!(loaded.self_risk(NodeId(2)), 0.3);
        assert_eq!(loaded.edge_prob(EdgeId(1)), 0.5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replaying_the_log_reproduces_the_live_graph_bit_for_bit() {
        let path = tmp_path("replay");
        let mut live = from_parts(
            &[0.1; 8],
            &(0..7u32).map(|v| (v, v + 1, 0.3)).collect::<Vec<_>>(),
            DuplicateEdgePolicy::Error,
        )
        .unwrap();
        let base = live.clone();
        {
            let mut wal = Wal::create(&path, 0, FsyncPolicy::Never).unwrap();
            for i in 0..6u32 {
                let delta = sample_delta(i % 7);
                delta.apply(&mut live).unwrap();
                wal.append(u64::from(i) + 1, &delta).unwrap();
            }
        }
        let mut replayed = base;
        for record in scan(&path).unwrap().records {
            record.delta.apply(&mut replayed).unwrap();
        }
        for v in 0..8 {
            assert_eq!(
                replayed.self_risk(NodeId(v)).to_bits(),
                live.self_risk(NodeId(v)).to_bits()
            );
        }
        for e in 0..7 {
            assert_eq!(
                replayed.edge_prob(EdgeId(e)).to_bits(),
                live.edge_prob(EdgeId(e)).to_bits()
            );
        }
        std::fs::remove_file(&path).unwrap();
    }
}
