//! Minimal JSON support for the service front end and the CLI's
//! `--format json` mode.
//!
//! The workspace builds with zero external dependencies, so this module
//! provides the small subset of JSON the wire format needs: a value
//! tree ([`Json`]), a strict recursive-descent parser ([`Json::parse`]),
//! and a compact single-line renderer (`Display`). Object key order is
//! preserved; numbers are `f64` (every request field the service reads
//! is well inside `f64`'s exact-integer range).

use std::fmt;

use vulnds_core::VulnError;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, VulnError> {
        Json::parse_salvaging_id(text).0
    }

    /// Like [`Json::parse`], but additionally returns any root-level
    /// `"id"` member that had already been parsed when a later syntax
    /// error cut the document short — so a protocol error response can
    /// still echo the request's id.
    pub fn parse_salvaging_id(text: &str) -> (Result<Json, VulnError>, Option<Json>) {
        let mut p = Parser { text, bytes: text.as_bytes(), pos: 0, depth: 0, root_id: None };
        p.skip_ws();
        let result = p.value().and_then(|value| {
            p.skip_ws();
            if p.pos != p.bytes.len() {
                return Err(p.err("trailing characters after JSON value"));
            }
            Ok(value)
        });
        let id = p.root_id.take();
        (result, id)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's items, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; null is the conventional spelling.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '\\' => f.write_str("\\\\")?,
            '"' => f.write_str("\\\"")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_str(c.encode_utf8(&mut [0u8; 4]))?,
        }
    }
    f.write_str("\"")
}

/// Maximum container nesting the parser accepts. Service requests are
/// at most three levels deep; the cap turns a hostile line of repeated
/// `[` into a parse error instead of recursing until the worker
/// thread's stack overflows (which aborts the whole process in Rust).
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    /// The source document; `bytes` is its byte view and `pos` always
    /// sits on a UTF-8 scalar boundary within it.
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    /// Root-level `"id"` member seen so far (for error-id salvage).
    root_id: Option<Json>,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> VulnError {
        VulnError::Usage(format!("invalid JSON at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), VulnError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, VulnError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, VulnError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    /// Runs one container parse a nesting level deeper, enforcing
    /// [`MAX_DEPTH`].
    fn nested(
        &mut self,
        container: impl FnOnce(&mut Self) -> Result<Json, VulnError>,
    ) -> Result<Json, VulnError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let value = container(self);
        self.depth -= 1;
        value
    }

    fn array(&mut self) -> Result<Json, VulnError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, VulnError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            // Depth 1 is the document's root object: remember its id
            // so an error later in the document can still echo it.
            if self.depth == 1 && key == "id" && self.root_id.is_none() {
                self.root_id = Some(value.clone());
            }
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, VulnError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            // from_str_radix tolerates a leading '+',
                            // so check the digits ourselves: exactly
                            // four ASCII hex characters, nothing else.
                            if !hex.iter().all(|b| b.is_ascii_hexdigit()) {
                                return Err(self.err("invalid \\u escape"));
                            }
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are rejected rather than paired:
                            // the service's own encoder never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                // RFC 8259: control characters (including NUL) must
                // arrive as escapes; a raw one is framing damage, not
                // content.
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string (escape it)"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. `pos` only ever
                    // advances by whole scalars or past ASCII bytes,
                    // so it is always a valid `str` boundary and the
                    // checked slice cannot fail.
                    let Some(c) = self.text.get(self.pos..).and_then(|s| s.chars().next()) else {
                        return Err(self.err("malformed UTF-8 sequence"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, VulnError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // The scanned range is all ASCII, so the slice is always on
        // char boundaries; a failed slice is unreachable but maps to a
        // clean parse error rather than a panic.
        let text = self.text.get(start..self.pos).ok_or_else(|| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"k": 5, "algorithm": "bsrbk", "candidates": [1, 2, 3], "opts": {"warm": true, "note": null}}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(5));
        assert_eq!(v.get("algorithm").and_then(Json::as_str), Some("bsrbk"));
        let c: Vec<u64> = v
            .get("candidates")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter_map(Json::as_u64)
            .collect();
        assert_eq!(c, vec![1, 2, 3]);
        assert_eq!(v.get("opts").unwrap().get("warm").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("opts").unwrap().get("note"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_string_escapes() {
        let v = Json::parse(r#""a\"b\\c\nAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nAé"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "{\"a\":1} x",
            "\"unterminated",
            "\"bad \\q escape\"",
            "nul",
            "[1 2]",
            "{1: 2}",
            // A signed \u escape must be rejected, not read as "A" + "41".
            "\"\\u+04141\"",
            "\"\\u00g1\"",
            "\"\\u12\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
        assert_eq!(Json::parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn round_trips_through_display() {
        let original = r#"{"id":7,"cmd":"detect","k":3,"score":0.125,"tags":["a\nb","c\"d"],"none":null,"on":true}"#;
        let parsed = Json::parse(original).unwrap();
        let rendered = parsed.to_string();
        assert_eq!(rendered, original);
        assert_eq!(Json::parse(&rendered).unwrap(), parsed);
    }

    #[test]
    fn salvages_root_id_from_broken_documents() {
        // id parsed before the error: salvaged.
        let (res, id) = Json::parse_salvaging_id(r#"{"id": 42, "cmd": "detect", "k": }"#);
        assert!(res.is_err());
        assert_eq!(id, Some(Json::Num(42.0)));
        // String ids salvage too.
        let (res, id) = Json::parse_salvaging_id(r#"{"id": "req-7", "k": [}"#);
        assert!(res.is_err());
        assert_eq!(id, Some(Json::Str("req-7".into())));
        // Error before the id member: nothing to salvage.
        let (res, id) = Json::parse_salvaging_id(r#"{"k": , "id": 42}"#);
        assert!(res.is_err());
        assert_eq!(id, None);
        // Nested ids are not the request's id.
        let (res, id) = Json::parse_salvaging_id(r#"{"opts": {"id": 9}, "k": }"#);
        assert!(res.is_err());
        assert_eq!(id, None);
        // A clean parse reports the id as well (unused by callers).
        let (res, id) = Json::parse_salvaging_id(r#"{"id": 1, "k": 5}"#);
        assert!(res.is_ok());
        assert_eq!(id, Some(Json::Num(1.0)));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Str("7".into()).as_u64(), None);
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn nesting_is_depth_limited_not_stack_limited() {
        // At the cap: parses fine.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
        // One past the cap: a clean error.
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(Json::parse(&deep).is_err());
        // A hostile megabyte of '[' must error, not overflow the stack.
        let hostile = "[".repeat(1 << 20);
        assert!(Json::parse(&hostile).is_err());
        // Mixed containers count too.
        let mixed = "{\"a\":".repeat(MAX_DEPTH + 1) + "1" + &"}".repeat(MAX_DEPTH + 1);
        assert!(Json::parse(&mixed).is_err());
    }
}
