//! The `vulnds` command-line tool. See `vulnds --help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match vulnds::cli::parse(&args).and_then(vulnds::cli::run) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
