//! The `vulnds` command-line tool. See `vulnds --help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match vulnds::cli::parse(&args).and_then(vulnds::cli::run) {
        Ok(output) => print!("{output}"),
        // Exit 1: durable state failed an integrity check (`wal
        // verify` found a corrupt record). Exit 2: everything else.
        Err(e @ vulnds::VulnError::Corrupt(_)) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
