//! # vulnds — top-k vulnerable nodes detection in uncertain graphs
//!
//! Facade crate re-exporting the full VulnDS system, a reproduction of
//! *Efficient Top-k Vulnerable Nodes Detection in Uncertain Graphs*
//! (Cheng, Chen, Wang, Xiang — ICDE 2022 / arXiv:1912.12383).
//!
//! ## Quick start
//!
//! ```
//! use vulnds::prelude::*;
//!
//! // Build an uncertain guarantee network: node self-risks + edge
//! // diffusion probabilities.
//! let mut b = UncertainGraph::builder(5);
//! for v in 0..5 {
//!     b.set_self_risk(NodeId(v), 0.2).unwrap();
//! }
//! for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (3, 4)] {
//!     b.add_edge(NodeId(u), NodeId(v), 0.2).unwrap();
//! }
//! let graph = b.build().unwrap();
//!
//! // Open a query session and ask for the most vulnerable node with the
//! // fastest algorithm. The session owns the graph (pass it by value,
//! // by `&` to clone, or by `Arc` to share) and answers through
//! // `&self`, so one session can serve many threads at once; follow-up
//! // queries reuse the session's cached bounds, candidate sets, and
//! // sampled worlds.
//! let detector = Detector::builder(graph).build().unwrap();
//! let result = detector.detect(&DetectRequest::new(1, AlgorithmKind::BottomK)).unwrap();
//! assert_eq!(result.top_k[0].node, NodeId(4));
//! ```
//!
//! ## Crate map
//!
//! * [`ugraph`] — uncertain graph storage, I/O and statistics.
//! * [`sampling`] — possible-world samplers (forward / reverse / parallel).
//! * [`sketch`] — bottom-k sketches.
//! * [`core`] — the `Detector` engine, bounds, pruning, the five
//!   detection algorithms, metrics.
//! * [`baselines`] — centralities, influence maximization, from-scratch ML.
//! * [`datasets`] — synthetic workloads matching the paper's Table 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod json;
pub mod serve;
pub mod wal;

pub use ugraph;
pub use vulnds_baselines as baselines;
pub use vulnds_core as core;
pub use vulnds_datasets as datasets;
pub use vulnds_sampling as sampling;
pub use vulnds_sketch as sketch;

/// The most common imports, bundled.
pub mod prelude {
    pub use ugraph::{
        from_parts, DuplicateEdgePolicy, EdgeId, GraphBuilder, GraphDelta, GraphStats, NodeId,
        UncertainGraph,
    };
    pub use vulnds_core::{
        precision_at_k, AlgorithmKind, ApproxParams, BlockWords, BoundsMethod, DeltaOutcome,
        DetectRequest, DetectResponse, DetectionResult, Detector, DetectorBuilder, EngineStats,
        IncrementalBounds, Intervention, IntoSharedGraph, ScoredNode, SessionStats, VulnConfig,
        VulnError, WhatIfReport,
    };
    pub use vulnds_datasets::{Dataset, ProbabilityModel};
    pub use vulnds_sampling::{forward_counts, reverse_counts, CancelToken, Xoshiro256pp};
}

pub use prelude::*;
