//! Command-line interface implementation (see the `vulnds` binary).
//!
//! Hand-rolled argument parsing — the dependency budget is spent on the
//! algorithmic crates, and the grammar is small:
//!
//! ```text
//! vulnds stats    <graph>                      print Table-2 style stats
//! vulnds detect   <graph> --k <n> [options]    top-k vulnerable nodes
//! vulnds score    <graph> [--method mc|bottomk] all-node risk scores
//! vulnds bounds   <graph> [--order z]          lower/upper bound summary
//! vulnds serve    <graph> [options]            JSON query service (stdin or TCP)
//! vulnds generate <dataset> <out> [--scale s]  synthetic Table-2 dataset
//! vulnds convert  <in> <out>                   text ↔ binary by extension
//! ```
//!
//! Detection runs through the session-oriented
//! [`vulnds_core::engine::Detector`] engine; every failure
//! (usage, graph I/O, configuration) surfaces as the workspace-wide
//! [`VulnError`]. `detect` and `score` take `--format json` for
//! machine-readable output (the same encoding the `serve` responses
//! use — see [`crate::serve`]).

use std::fmt::Write as _;
use ugraph::{GraphStats, UncertainGraph};
use vulnds_core::engine::{default_threads, DetectRequest, Detector};
use vulnds_core::{
    compute_bounds, score_nodes_bottomk, score_nodes_mc, AlgorithmKind, ApproxParams, BlockWords,
    Direction, NodeOrder, VulnConfig, VulnError,
};
use vulnds_datasets::Dataset;

use crate::json::Json;
use crate::serve::{
    detect_response_json, scores_json, serve_durable, serve_tcp, session_stats_json, ServeOptions,
    UpdateLog,
};
use crate::wal::FsyncPolicy;

/// Output encoding for `detect`/`score`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// The line-oriented human format (default).
    #[default]
    Human,
    /// One JSON document, field-compatible with `serve` responses.
    Json,
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings are given by the grammar above
pub enum Command {
    /// `stats <graph>`
    Stats { path: String },
    /// `detect <graph> --k <n> ...`
    Detect {
        path: String,
        k: usize,
        algorithm: AlgorithmKind,
        config: VulnConfig,
        format: OutputFormat,
        relabel: Option<NodeOrder>,
    },
    /// `score <graph> --method ...`
    Score { path: String, bottomk: bool, config: VulnConfig, format: OutputFormat },
    /// `serve <graph> --workers <w> [--tcp addr] [--wal path] ...`
    Serve {
        path: String,
        config: VulnConfig,
        tcp: Option<String>,
        options: ServeOptions,
        wal: Option<String>,
        fsync: FsyncPolicy,
        compact_every: Option<u64>,
    },
    /// `wal dump|verify <log>`
    Wal { verify: bool, path: String },
    /// `bounds <graph> --order <z>`
    Bounds { path: String, order: usize },
    /// `generate <dataset> <out> --scale <s> --seed <s>`
    Generate { dataset: Dataset, out: String, scale: f64, seed: u64 },
    /// `convert <in> <out>`
    Convert { input: String, output: String },
    /// `--help` or no arguments.
    Help,
}

fn err(msg: impl Into<String>) -> VulnError {
    VulnError::Usage(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
vulnds — top-k vulnerable nodes detection in uncertain graphs

USAGE:
  vulnds stats    <graph>
  vulnds detect   <graph> --k <n> [--algorithm n|sn|sr|bsr|bsrbk]
                  [--epsilon <e>] [--delta <d>] [--seed <s>]
                  [--threads <t>] [--bk <b>] [--bound-order <z>]
                  [--block-words auto|1|2|4|8] [--direction push|pull|auto]
                  [--relabel none|degree|bfs] [--format human|json]
  vulnds score    <graph> [--method mc|bottomk] [--seed <s>] [--threads <t>]
                  [--block-words auto|1|2|4|8] [--format human|json]
  vulnds bounds   <graph> [--order <z>]
  vulnds serve    <graph> [--workers <w>] [--tcp <addr>] [--seed <s>]
                  [--threads <t>] [--bk <b>] [--bound-order <z>]
                  [--block-words auto|1|2|4|8] [--direction push|pull|auto]
                  [--max-samples <n>] [--default-timeout-ms <ms>]
                  [--max-connections <n>] [--drain-ms <ms>]
                  [--wal <log>] [--fsync always|never]
                  [--compact-every <n>]
  vulnds wal      dump|verify <log>
  vulnds generate <dataset> <out> [--scale <0..1>] [--seed <s>]
                  datasets: bitcoin facebook wiki p2p citation
                            interbank guarantee fraud
  vulnds convert  <in> <out>       (.bin extension selects binary format)

--threads defaults to the machine's available parallelism; results are
bit-identical for any thread count. --block-words pins the samplers'
superblock width (worlds per traversal = words x 64); the default
'auto' plans it per pass from budget and threads, and every width
returns bit-identical results. --direction picks the forward
samplers' frontier strategy: push (sparse out-edge expansion), pull
(dense in-edge sweep), or the default auto, which switches per step
on measured frontier occupancy; every choice also returns
bit-identical results. --relabel runs detection on a cache-relabeled
copy of the graph (degree: hubs first; bfs: breadth-first from the
biggest hub) and maps every answer back to the input labeling;
unlike the other knobs it resamples with different coin streams, so
scores vary within the same epsilon/delta contract.

serve answers newline-delimited JSON requests (see the vulnds::serve
module docs for the wire format) from one shared session: stdin by
default, or a TCP listener with --tcp host:port. --workers sets the
query worker pool per connection (defaults to available parallelism;
TCP mode serves up to --max-connections clients at once, default 64,
each with its own pool over the one shared session, refusing the rest
with a structured overloaded response); --threads sets the per-query
sampler threads and defaults to 1 in serve mode, the right posture
when many clients query at once. Serve caps every query's sample
budget at --max-samples (default 5000000) so a client-chosen epsilon
cannot pin a worker on an unbounded sampling job.
--default-timeout-ms gives every query a deadline (and caps each
request's own timeout_ms): a query cut off by its deadline returns a
degraded answer — fewer samples, a wider achieved_epsilon, still
bit-identically replayable. Requests past the queue are shed with an
error: overloaded response carrying retry_after_ms. A cmd: shutdown
request (or end of input) stops the intake and drains in-flight
queries for --drain-ms (default 2000) before cancelling them into
degraded answers; serve then flushes and exits 0.

--wal makes serve durable: every acked update request is first
appended to <log> as a checksummed, epoch-numbered record (fsync per
--fsync, default always). On startup serve replays the log — loading
<log>.snapshot as the base when a compaction has written one — and
drops any torn tail, so a kill -9 at any instant loses at most
un-acked updates. --compact-every <n> snapshots the live graph and
rotates the log after every n records. vulnds wal dump prints the
records of a log; vulnds wal verify exits 1 on a corrupt record,
reporting the torn-tail offset.
Graph files: text format (see ugraph::io) or binary (.bin).";

/// Parses a `--block-words` value: `auto` (planner) or a fixed width.
fn parse_block_words(s: &str) -> Result<Option<BlockWords>, VulnError> {
    if s.eq_ignore_ascii_case("auto") {
        return Ok(None);
    }
    s.parse::<BlockWords>().map(Some).map_err(|e| err(format!("--block-words: {e}")))
}

/// Parses a `--direction` value: `push`, `pull`, or `auto`.
fn parse_direction(s: &str) -> Result<Direction, VulnError> {
    s.parse::<Direction>().map_err(|e| err(format!("--direction: {e}")))
}

/// Parses a `--relabel` value: `none`, `degree`, or `bfs`.
fn parse_relabel(s: &str) -> Result<Option<NodeOrder>, VulnError> {
    match s.to_ascii_lowercase().as_str() {
        "none" => Ok(None),
        "degree" => Ok(Some(NodeOrder::DegreeDescending)),
        "bfs" => Ok(Some(NodeOrder::BfsFromHub)),
        other => Err(err(format!("--relabel: unknown order {other} (none|degree|bfs)"))),
    }
}

/// Parses a `--format` value.
fn parse_format(s: &str) -> Result<OutputFormat, VulnError> {
    match s.to_ascii_lowercase().as_str() {
        "human" => Ok(OutputFormat::Human),
        "json" => Ok(OutputFormat::Json),
        other => Err(err(format!("--format: unknown format {other} (human|json)"))),
    }
}

/// Parses an argument list (without the program name).
pub fn parse(args: &[String]) -> Result<Command, VulnError> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "-h" | "--help" | "help" => Ok(Command::Help),
        "stats" => {
            let path = it.next().ok_or_else(|| err("stats: missing <graph> path"))?.clone();
            expect_empty(it)?;
            Ok(Command::Stats { path })
        }
        "detect" => {
            let path = it.next().ok_or_else(|| err("detect: missing <graph> path"))?.clone();
            let rest: Vec<String> = it.cloned().collect();
            let mut k: Option<usize> = None;
            let mut algorithm = AlgorithmKind::BottomK;
            let mut config = VulnConfig::default();
            let mut threads: Option<usize> = None;
            let mut format = OutputFormat::Human;
            let mut relabel: Option<NodeOrder> = None;
            let mut epsilon = config.approx.epsilon();
            let mut delta = config.approx.delta();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--k" => {
                        k = Some(
                            value(&rest, &mut i)?
                                .parse()
                                .map_err(|_| err("--k: not an integer"))?,
                        )
                    }
                    "--algorithm" => algorithm = parse_algorithm(&value(&rest, &mut i)?)?,
                    "--epsilon" => {
                        epsilon = value(&rest, &mut i)?
                            .parse()
                            .map_err(|_| err("--epsilon: not a number"))?
                    }
                    "--delta" => {
                        delta = value(&rest, &mut i)?
                            .parse()
                            .map_err(|_| err("--delta: not a number"))?
                    }
                    "--seed" => {
                        config.seed = value(&rest, &mut i)?
                            .parse()
                            .map_err(|_| err("--seed: not an integer"))?
                    }
                    "--threads" => {
                        threads = Some(
                            value(&rest, &mut i)?
                                .parse()
                                .map_err(|_| err("--threads: not an integer"))?,
                        )
                    }
                    "--bk" => {
                        config.bk = value(&rest, &mut i)?
                            .parse()
                            .map_err(|_| err("--bk: not an integer"))?
                    }
                    "--bound-order" => {
                        config.bound_order = value(&rest, &mut i)?
                            .parse()
                            .map_err(|_| err("--bound-order: not an integer"))?
                    }
                    "--block-words" => {
                        config.block_words = parse_block_words(&value(&rest, &mut i)?)?
                    }
                    "--direction" => config.direction = parse_direction(&value(&rest, &mut i)?)?,
                    "--relabel" => relabel = parse_relabel(&value(&rest, &mut i)?)?,
                    "--format" => format = parse_format(&value(&rest, &mut i)?)?,
                    other => return Err(err(format!("detect: unknown option {other}"))),
                }
                i += 1;
            }
            config.approx = ApproxParams::new(epsilon, delta)?;
            config.threads = threads.unwrap_or_else(default_threads).max(1);
            let k = k.ok_or_else(|| err("detect: --k is required"))?;
            Ok(Command::Detect { path, k, algorithm, config, format, relabel })
        }
        "score" => {
            let path = it.next().ok_or_else(|| err("score: missing <graph> path"))?.clone();
            let rest: Vec<String> = it.cloned().collect();
            let mut bottomk = false;
            let mut config = VulnConfig::default();
            let mut threads: Option<usize> = None;
            let mut format = OutputFormat::Human;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--method" => {
                        bottomk = match value(&rest, &mut i)?.as_str() {
                            "mc" => false,
                            "bottomk" => true,
                            other => return Err(err(format!("--method: unknown method {other}"))),
                        }
                    }
                    "--seed" => {
                        config.seed = value(&rest, &mut i)?
                            .parse()
                            .map_err(|_| err("--seed: not an integer"))?
                    }
                    "--threads" => {
                        threads = Some(
                            value(&rest, &mut i)?
                                .parse()
                                .map_err(|_| err("--threads: not an integer"))?,
                        )
                    }
                    "--block-words" => {
                        config.block_words = parse_block_words(&value(&rest, &mut i)?)?
                    }
                    "--format" => format = parse_format(&value(&rest, &mut i)?)?,
                    other => return Err(err(format!("score: unknown option {other}"))),
                }
                i += 1;
            }
            config.threads = threads.unwrap_or_else(default_threads).max(1);
            Ok(Command::Score { path, bottomk, config, format })
        }
        "serve" => {
            let path = it.next().ok_or_else(|| err("serve: missing <graph> path"))?.clone();
            let rest: Vec<String> = it.cloned().collect();
            let mut config = VulnConfig::default();
            let mut threads: Option<usize> = None;
            let mut workers: Option<usize> = None;
            let mut tcp: Option<String> = None;
            let mut max_samples = crate::serve::DEFAULT_SERVE_MAX_SAMPLES;
            let mut default_timeout_ms: Option<u64> = None;
            let mut max_connections = crate::serve::MAX_CONNECTIONS;
            let mut drain_ms = crate::serve::DEFAULT_DRAIN_MS;
            let mut wal: Option<String> = None;
            let mut fsync = FsyncPolicy::Always;
            let mut compact_every: Option<u64> = None;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--workers" => {
                        workers = Some(
                            value(&rest, &mut i)?
                                .parse()
                                .map_err(|_| err("--workers: not an integer"))?,
                        )
                    }
                    "--tcp" => tcp = Some(value(&rest, &mut i)?),
                    "--wal" => wal = Some(value(&rest, &mut i)?),
                    "--fsync" => {
                        let v = value(&rest, &mut i)?;
                        fsync = FsyncPolicy::parse(&v).ok_or_else(|| {
                            err(format!("--fsync: unknown policy {v} (always|never)"))
                        })?
                    }
                    "--compact-every" => {
                        compact_every = Some(
                            value(&rest, &mut i)?
                                .parse::<u64>()
                                .ok()
                                .filter(|&n| n > 0)
                                .ok_or_else(|| err("--compact-every: not a positive integer"))?,
                        )
                    }
                    "--max-samples" => {
                        max_samples = value(&rest, &mut i)?
                            .parse::<u64>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| err("--max-samples: not a positive integer"))?
                    }
                    "--default-timeout-ms" => {
                        default_timeout_ms = Some(
                            value(&rest, &mut i)?
                                .parse()
                                .map_err(|_| err("--default-timeout-ms: not an integer"))?,
                        )
                    }
                    "--max-connections" => {
                        max_connections = value(&rest, &mut i)?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| err("--max-connections: not a positive integer"))?
                    }
                    "--drain-ms" => {
                        drain_ms = value(&rest, &mut i)?
                            .parse()
                            .map_err(|_| err("--drain-ms: not an integer"))?
                    }
                    "--seed" => {
                        config.seed = value(&rest, &mut i)?
                            .parse()
                            .map_err(|_| err("--seed: not an integer"))?
                    }
                    "--threads" => {
                        threads = Some(
                            value(&rest, &mut i)?
                                .parse()
                                .map_err(|_| err("--threads: not an integer"))?,
                        )
                    }
                    "--bk" => {
                        config.bk = value(&rest, &mut i)?
                            .parse()
                            .map_err(|_| err("--bk: not an integer"))?
                    }
                    "--bound-order" => {
                        config.bound_order = value(&rest, &mut i)?
                            .parse()
                            .map_err(|_| err("--bound-order: not an integer"))?
                    }
                    "--block-words" => {
                        config.block_words = parse_block_words(&value(&rest, &mut i)?)?
                    }
                    "--direction" => config.direction = parse_direction(&value(&rest, &mut i)?)?,
                    other => return Err(err(format!("serve: unknown option {other}"))),
                }
                i += 1;
            }
            // Serving posture: many concurrent clients, so the worker
            // pool gets the parallelism, each query's samplers stay
            // single-threaded unless told otherwise, and every budget
            // is capped — clients pick ε/δ per request, and without a
            // cap a hostile ε (e.g. 1e-9) is a denial of service.
            config.threads = threads.unwrap_or(1).max(1);
            config.max_samples = Some(max_samples);
            let options = ServeOptions {
                workers: workers.unwrap_or_else(default_threads).max(1),
                default_timeout_ms,
                drain_ms,
                max_connections,
                ..ServeOptions::default()
            };
            Ok(Command::Serve { path, config, tcp, options, wal, fsync, compact_every })
        }
        "wal" => {
            let action = it.next().ok_or_else(|| err("wal: missing action (dump|verify)"))?;
            let verify = match action.as_str() {
                "dump" => false,
                "verify" => true,
                other => return Err(err(format!("wal: unknown action {other} (dump|verify)"))),
            };
            let path = it.next().ok_or_else(|| err("wal: missing <log> path"))?.clone();
            expect_empty(it)?;
            Ok(Command::Wal { verify, path })
        }
        "bounds" => {
            let path = it.next().ok_or_else(|| err("bounds: missing <graph> path"))?.clone();
            let rest: Vec<String> = it.cloned().collect();
            let mut order = 2;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--order" => {
                        order = value(&rest, &mut i)?
                            .parse()
                            .map_err(|_| err("--order: not an integer"))?
                    }
                    other => return Err(err(format!("bounds: unknown option {other}"))),
                }
                i += 1;
            }
            Ok(Command::Bounds { path, order })
        }
        "generate" => {
            let name = it.next().ok_or_else(|| err("generate: missing <dataset>"))?;
            let dataset = parse_dataset(name)?;
            let out = it.next().ok_or_else(|| err("generate: missing <out> path"))?.clone();
            let rest: Vec<String> = it.cloned().collect();
            let mut scale = 1.0;
            let mut seed = 42;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--scale" => {
                        scale = value(&rest, &mut i)?
                            .parse()
                            .map_err(|_| err("--scale: not a number"))?
                    }
                    "--seed" => {
                        seed = value(&rest, &mut i)?
                            .parse()
                            .map_err(|_| err("--seed: not an integer"))?
                    }
                    other => return Err(err(format!("generate: unknown option {other}"))),
                }
                i += 1;
            }
            Ok(Command::Generate { dataset, out, scale, seed })
        }
        "convert" => {
            let input = it.next().ok_or_else(|| err("convert: missing <in> path"))?.clone();
            let output = it.next().ok_or_else(|| err("convert: missing <out> path"))?.clone();
            expect_empty(it)?;
            Ok(Command::Convert { input, output })
        }
        other => Err(err(format!("unknown command {other}; see --help"))),
    }
}

/// Shared tail of `Command::Serve`: bind-or-stdin serving over an
/// already-recovered detector, with an optional durable update log.
fn run_serve(
    detector: &Detector,
    tcp: Option<String>,
    options: &ServeOptions,
    updates: Option<&UpdateLog>,
    out: String,
) -> Result<String, VulnError> {
    match tcp {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr)
                .map_err(|e| VulnError::Usage(format!("serve: cannot bind {addr}: {e}")))?;
            // Print the *bound* address: with a `:0` port the
            // kernel picks, and harness-driven clients (the
            // fault-injection suite) parse this line to find it.
            let bound =
                listener.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| addr.clone());
            eprintln!(
                "vulnds serve: listening on {bound} ({} workers per connection, max {} connections)",
                options.workers, options.max_connections
            );
            serve_tcp(detector, listener, options, updates)?;
            eprintln!("vulnds serve: drained and stopped");
        }
        None => {
            // `StdoutLock` is not `Send`; the handle itself is,
            // and locks per `write` call. The summary goes to
            // stderr: stdout is the NDJSON response stream and
            // must stay machine-parseable to the last line.
            let stdin = std::io::stdin();
            let summary =
                serve_durable(detector, options, updates, stdin.lock(), std::io::stdout())?;
            eprintln!(
                "vulnds serve: answered {} requests ({} shed{})",
                summary.requests,
                summary.shed,
                if summary.shutdown { ", shutdown requested" } else { "" }
            );
        }
    }
    Ok(out)
}

fn value(rest: &[String], i: &mut usize) -> Result<String, VulnError> {
    *i += 1;
    rest.get(*i).cloned().ok_or_else(|| err(format!("{}: missing value", rest[*i - 1])))
}

fn expect_empty<'a>(mut it: impl Iterator<Item = &'a String>) -> Result<(), VulnError> {
    match it.next() {
        None => Ok(()),
        Some(extra) => Err(err(format!("unexpected argument {extra}"))),
    }
}

/// Parses an algorithm label (shared with the `serve` request decoder).
pub(crate) fn parse_algorithm(s: &str) -> Result<AlgorithmKind, VulnError> {
    match s.to_ascii_lowercase().as_str() {
        "n" | "naive" => Ok(AlgorithmKind::Naive),
        "sn" => Ok(AlgorithmKind::SampledNaive),
        "sr" => Ok(AlgorithmKind::SampleReverse),
        "bsr" => Ok(AlgorithmKind::BoundedSampleReverse),
        "bsrbk" => Ok(AlgorithmKind::BottomK),
        other => Err(err(format!("unknown algorithm {other} (n|sn|sr|bsr|bsrbk)"))),
    }
}

fn parse_dataset(s: &str) -> Result<Dataset, VulnError> {
    match s.to_ascii_lowercase().as_str() {
        "bitcoin" => Ok(Dataset::Bitcoin),
        "facebook" => Ok(Dataset::Facebook),
        "wiki" => Ok(Dataset::Wiki),
        "p2p" => Ok(Dataset::P2P),
        "citation" => Ok(Dataset::Citation),
        "interbank" => Ok(Dataset::Interbank),
        "guarantee" => Ok(Dataset::Guarantee),
        "fraud" => Ok(Dataset::Fraud),
        other => Err(err(format!("unknown dataset {other}"))),
    }
}

fn load(path: &str) -> Result<UncertainGraph, VulnError> {
    let result = if path.ends_with(".bin") {
        ugraph::io_binary::load_binary(path)
    } else {
        ugraph::io::load_from_path(path)
    };
    result.map_err(|error| VulnError::File { path: path.to_string(), error })
}

fn save(g: &UncertainGraph, path: &str) -> Result<(), VulnError> {
    let result = if path.ends_with(".bin") {
        ugraph::io_binary::save_binary(g, path)
    } else {
        ugraph::io::save_to_path(g, path)
    };
    result.map_err(|error| VulnError::File { path: path.to_string(), error })
}

/// Executes a command, returning the text to print.
pub fn run(command: Command) -> Result<String, VulnError> {
    let mut out = String::new();
    match command {
        Command::Help => out.push_str(USAGE),
        Command::Stats { path } => {
            let g = load(&path)?;
            let s = GraphStats::compute(&g);
            let _ = writeln!(out, "nodes:            {}", s.nodes);
            let _ = writeln!(out, "edges:            {}", s.edges);
            let _ = writeln!(out, "avg degree:       {:.3}", s.avg_degree);
            let _ = writeln!(out, "max degree:       {}", s.max_degree);
            let _ = writeln!(out, "max in-degree:    {}", s.max_in_degree);
            let _ = writeln!(out, "max out-degree:   {}", s.max_out_degree);
            let _ = writeln!(out, "mean self-risk:   {:.4}", s.mean_self_risk);
            let _ = writeln!(out, "mean edge prob:   {:.4}", s.mean_edge_prob);
            let scc = ugraph::strongly_connected_components(&g);
            let _ = writeln!(
                out,
                "SCCs:             {} ({} non-trivial)",
                scc.count,
                scc.non_trivial().len()
            );
        }
        Command::Detect { path, k, algorithm, config, format, relabel } => {
            let g = load(&path)?;
            if k == 0 || k > g.num_nodes() {
                return Err(err(format!("--k must be in 1..={}", g.num_nodes())));
            }
            let mut builder = Detector::builder(g).config(config);
            if let Some(order) = relabel {
                builder = builder.relabel(order);
            }
            let detector = builder.build()?;
            let r = detector.detect(&DetectRequest::new(k, algorithm))?;
            let session = detector.session_stats();
            if format == OutputFormat::Json {
                let doc = match detect_response_json(&r) {
                    Json::Obj(mut fields) => {
                        fields.push(("session".to_string(), session_stats_json(&session)));
                        Json::Obj(fields)
                    }
                    other => other,
                };
                let _ = writeln!(out, "{doc}");
                return Ok(out);
            }
            let _ = writeln!(
                out,
                "# algorithm {} | samples {}/{} | candidates {} | verified {} | {:?}",
                algorithm.label(),
                r.stats.samples_used,
                r.stats.sample_budget,
                r.stats.candidates,
                r.stats.verified,
                r.stats.elapsed
            );
            let _ = writeln!(
                out,
                "# coins coin-words {} | lazy edge-words skipped {} | tables built {}",
                r.engine.coin_words_synthesized,
                r.engine.lazy_edge_words_skipped,
                session.coin_tables_built
            );
            let _ = writeln!(
                out,
                "# blocks block-words {} | superblocks {}",
                r.engine.block_words, r.engine.superblocks
            );
            let _ = writeln!(
                out,
                "# traversal push-steps {} | pull-steps {} | switches {} | relabeled {}",
                r.engine.push_steps,
                r.engine.pull_steps,
                r.engine.direction_switches,
                r.engine.relabel_applied
            );
            let _ = writeln!(
                out,
                "# traffic queries {} | degraded {} | cancelled {} | shed {} | in-flight {} | \
                 epoch {} | graph-version {} | caches revalidated {} | invalidated {}",
                session.queries,
                session.queries_degraded,
                session.queries_cancelled,
                session.requests_shed,
                session.in_flight,
                session.epoch,
                session.graph_version,
                session.caches_revalidated,
                session.caches_invalidated
            );
            let _ = writeln!(out, "# rank node score");
            for (rank, s) in r.top_k.iter().enumerate() {
                let _ = writeln!(out, "{} {} {:.6}", rank + 1, s.node.0, s.score);
            }
        }
        Command::Score { path, bottomk, config, format } => {
            let g = load(&path)?;
            let k_hint = (g.num_nodes() / 10).max(1);
            let method = if bottomk { "bottomk" } else { "mc" };
            let scores = if bottomk {
                score_nodes_bottomk(&g, k_hint, &config)
            } else {
                score_nodes_mc(&g, k_hint, &config)
            };
            if format == OutputFormat::Json {
                let _ = writeln!(out, "{}", scores_json(method, &scores));
                return Ok(out);
            }
            let _ = writeln!(out, "# node score ({method})");
            for (v, s) in scores.iter().enumerate() {
                let _ = writeln!(out, "{v} {s:.6}");
            }
        }
        Command::Serve { path, config, tcp, options, wal, fsync, compact_every } => {
            let mut g = load(&path)?;
            // Durable startup: a compaction snapshot, when present,
            // replaces the input graph as the replay base; the WAL's
            // base epoch then matches the snapshot and every surviving
            // record re-applies through the engine so caches, bounds,
            // and epoch counters rebuild exactly as if the deltas had
            // just been committed.
            if let Some(wal_path) = &wal {
                let snapshot = crate::wal::snapshot_path(std::path::Path::new(wal_path));
                if snapshot.exists() {
                    g = ugraph::io_binary::load_binary(&snapshot).map_err(|e| {
                        VulnError::Corrupt(format!("snapshot {}: {e}", snapshot.display()))
                    })?;
                }
                let (log, scan) =
                    crate::wal::Wal::recover(std::path::Path::new(wal_path), fsync)
                        .map_err(|e| VulnError::Usage(format!("serve: wal {wal_path}: {e}")))?;
                if let Some(torn) = &scan.torn {
                    eprintln!(
                        "vulnds serve: wal {wal_path}: dropped torn tail at offset {} ({} bytes: {})",
                        torn.offset, torn.dropped_bytes, torn.reason
                    );
                }
                eprintln!(
                    "vulnds serve: wal {wal_path}: base epoch {}, replaying {} record(s)",
                    scan.base_epoch,
                    scan.records.len()
                );
                let detector = Detector::builder(g).config(config).build()?;
                for record in &scan.records {
                    detector.apply_delta(&record.delta).map_err(|e| {
                        VulnError::Corrupt(format!("wal {wal_path}: epoch {}: {e}", record.epoch))
                    })?;
                }
                let updates = UpdateLog::new(log, compact_every);
                return run_serve(&detector, tcp, &options, Some(&updates), out);
            }
            let detector = Detector::builder(g).config(config).build()?;
            return run_serve(&detector, tcp, &options, None, out);
        }
        Command::Wal { verify, path } => {
            let scan = crate::wal::scan(std::path::Path::new(&path))
                .map_err(|e| VulnError::Corrupt(format!("wal {path}: {e}")))?;
            let _ = writeln!(
                out,
                "# wal {path} | base epoch {} | records {} | committed bytes {}",
                scan.base_epoch,
                scan.records.len(),
                scan.committed_len()
            );
            if !verify {
                let _ = writeln!(out, "# epoch offset bytes nodes-touched edges-touched");
                for r in &scan.records {
                    let _ = writeln!(
                        out,
                        "{} {} {} {} {}",
                        r.epoch,
                        r.offset,
                        r.delta.encode().len(),
                        r.delta.self_risk.len(),
                        r.delta.edge_prob.len()
                    );
                }
            }
            if let Some(torn) = &scan.torn {
                return Err(VulnError::Corrupt(format!(
                    "wal {path}: torn tail at offset {} ({} bytes dropped: {})",
                    torn.offset, torn.dropped_bytes, torn.reason
                )));
            }
            let _ = writeln!(out, "# verify ok");
        }
        Command::Bounds { path, order } => {
            let g = load(&path)?;
            let (lower, upper) = compute_bounds(&g, order, Default::default());
            let _ = writeln!(out, "# node lower upper (order {order})");
            for v in 0..g.num_nodes() {
                let _ = writeln!(out, "{v} {:.6} {:.6}", lower[v], upper[v]);
            }
        }
        Command::Generate { dataset, out: path, scale, seed } => {
            if !(scale > 0.0 && scale <= 1.0) {
                return Err(err("--scale must be in (0, 1]"));
            }
            let g = dataset.generate_scaled(seed, scale);
            save(&g, &path)?;
            let s = GraphStats::compute(&g);
            let _ =
                writeln!(out, "wrote {} ({} nodes, {} edges) to {path}", dataset, s.nodes, s.edges);
        }
        Command::Convert { input, output } => {
            let g = load(&input)?;
            save(&g, &output)?;
            let _ = writeln!(out, "converted {input} -> {output}");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_help_variants() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
    }

    #[test]
    fn parses_detect_with_options() {
        let c = parse(&args(
            "detect g.txt --k 10 --algorithm bsr --epsilon 0.2 --delta 0.05 --seed 7 --threads 4 --bk 8 --bound-order 3 --block-words 4",
        ))
        .unwrap();
        match c {
            Command::Detect { path, k, algorithm, config, format, relabel } => {
                assert_eq!(path, "g.txt");
                assert_eq!(k, 10);
                assert_eq!(algorithm, AlgorithmKind::BoundedSampleReverse);
                assert_eq!(config.approx.epsilon(), 0.2);
                assert_eq!(config.approx.delta(), 0.05);
                assert_eq!(config.seed, 7);
                assert_eq!(config.threads, 4);
                assert_eq!(config.bk, 8);
                assert_eq!(config.bound_order, 3);
                assert_eq!(config.block_words, Some(BlockWords::W4));
                assert_eq!(format, OutputFormat::Human);
                assert_eq!(relabel, None);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_direction_and_relabel_values() {
        for (value, expected) in
            [("push", Direction::Push), ("pull", Direction::Pull), ("auto", Direction::Auto)]
        {
            match parse(&args(&format!("detect g.txt --k 3 --direction {value}"))).unwrap() {
                Command::Detect { config, .. } => assert_eq!(config.direction, expected),
                other => panic!("wrong command: {other:?}"),
            }
            match parse(&args(&format!("serve g.txt --direction {value}"))).unwrap() {
                Command::Serve { config, .. } => assert_eq!(config.direction, expected),
                other => panic!("wrong command: {other:?}"),
            }
        }
        // Default is the occupancy-adaptive policy.
        match parse(&args("detect g.txt --k 3")).unwrap() {
            Command::Detect { config, .. } => assert_eq!(config.direction, Direction::Auto),
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&args("detect g.txt --k 3 --direction both")).is_err());
        assert!(parse(&args("serve g.txt --direction sideways")).is_err());

        for (value, expected) in [
            ("none", None),
            ("degree", Some(NodeOrder::DegreeDescending)),
            ("bfs", Some(NodeOrder::BfsFromHub)),
        ] {
            match parse(&args(&format!("detect g.txt --k 3 --relabel {value}"))).unwrap() {
                Command::Detect { relabel, .. } => assert_eq!(relabel, expected),
                other => panic!("wrong command: {other:?}"),
            }
        }
        assert!(parse(&args("detect g.txt --k 3 --relabel hilbert")).is_err());
    }

    #[test]
    fn parses_serve_with_options() {
        let c =
            parse(&args("serve g.txt --workers 6 --tcp 127.0.0.1:7070 --seed 9 --bk 16")).unwrap();
        match c {
            Command::Serve { path, config, tcp, options, .. } => {
                assert_eq!(path, "g.txt");
                assert_eq!(options.workers, 6);
                assert_eq!(tcp.as_deref(), Some("127.0.0.1:7070"));
                assert_eq!(config.seed, 9);
                assert_eq!(config.bk, 16);
                assert_eq!(config.threads, 1, "serve defaults per-query samplers to 1 thread");
                assert_eq!(
                    config.max_samples,
                    Some(crate::serve::DEFAULT_SERVE_MAX_SAMPLES),
                    "serve must cap budgets by default (hostile-epsilon DoS guard)"
                );
                assert_eq!(options.default_timeout_ms, None);
                assert_eq!(options.max_connections, crate::serve::MAX_CONNECTIONS);
                assert_eq!(options.drain_ms, crate::serve::DEFAULT_DRAIN_MS);
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&args("serve g.txt --max-samples 1000")).unwrap() {
            Command::Serve { config, .. } => assert_eq!(config.max_samples, Some(1000)),
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&args("serve g.txt --max-samples 0")).is_err());
        assert!(parse(&args("serve g.txt --max-samples lots")).is_err());
        // Defaults: stdin mode, worker pool sized to the machine.
        match parse(&args("serve g.txt")).unwrap() {
            Command::Serve { tcp, options, .. } => {
                assert_eq!(options.workers, default_threads().max(1));
                assert_eq!(tcp, None);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&args("serve")).is_err());
        assert!(parse(&args("serve g.txt --frobnicate yes")).is_err());
    }

    #[test]
    fn parses_serve_durability_flags_and_wal_subcommand() {
        match parse(&args("serve g.bin --wal g.wal --fsync never --compact-every 32")).unwrap() {
            Command::Serve { wal, fsync, compact_every, .. } => {
                assert_eq!(wal.as_deref(), Some("g.wal"));
                assert_eq!(fsync, FsyncPolicy::Never);
                assert_eq!(compact_every, Some(32));
            }
            other => panic!("wrong command: {other:?}"),
        }
        // Defaults: no log, fsync on every append, no compaction.
        match parse(&args("serve g.bin")).unwrap() {
            Command::Serve { wal, fsync, compact_every, .. } => {
                assert_eq!(wal, None);
                assert_eq!(fsync, FsyncPolicy::Always);
                assert_eq!(compact_every, None);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&args("serve g.bin --fsync sometimes")).is_err());
        assert!(parse(&args("serve g.bin --compact-every 0")).is_err());
        assert!(parse(&args("serve g.bin --compact-every many")).is_err());

        match parse(&args("wal dump g.wal")).unwrap() {
            Command::Wal { verify, path } => {
                assert!(!verify);
                assert_eq!(path, "g.wal");
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(matches!(
            parse(&args("wal verify g.wal")).unwrap(),
            Command::Wal { verify: true, .. }
        ));
        assert!(parse(&args("wal g.wal")).is_err());
        assert!(parse(&args("wal verify")).is_err());
        assert!(parse(&args("wal verify g.wal extra")).is_err());
    }

    #[test]
    fn wal_dump_and_verify_report_records_and_corruption() {
        use std::io::{Seek, SeekFrom, Write as _};

        let dir = std::env::temp_dir().join("vulnds_cli_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("updates.wal");
        let mut wal = crate::wal::Wal::create(&log, 0, FsyncPolicy::Never).unwrap();
        wal.append(1, &ugraph::GraphDelta::default().set_self_risk(ugraph::NodeId(2), 0.5))
            .unwrap();
        wal.append(
            2,
            &ugraph::GraphDelta::default()
                .set_edge_prob(ugraph::EdgeId(0), 0.25)
                .set_self_risk(ugraph::NodeId(1), 0.75),
        )
        .unwrap();
        drop(wal);
        let log_s = log.to_string_lossy().to_string();

        let dump = run(parse(&args(&format!("wal dump {log_s}"))).unwrap()).unwrap();
        assert!(dump.contains("base epoch 0"), "{dump}");
        assert!(dump.contains("records 2"), "{dump}");
        let rows: Vec<&str> = dump.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(rows.len(), 2, "{dump}");
        assert!(rows[0].starts_with("1 "), "{dump}");
        assert!(rows[1].starts_with("2 "), "{dump}");

        let verify = run(parse(&args(&format!("wal verify {log_s}"))).unwrap()).unwrap();
        assert!(verify.contains("# verify ok"), "{verify}");

        // Flip one payload byte in the second record: verify must fail
        // with the corruption error (exit 1 at the binary), naming the
        // torn-tail offset, while dump-without-verify of the intact
        // prefix still works.
        let len = std::fs::metadata(&log).unwrap().len();
        let mut f = std::fs::OpenOptions::new().write(true).open(&log).unwrap();
        f.seek(SeekFrom::Start(len - 6)).unwrap();
        f.write_all(&[0xFF]).unwrap();
        drop(f);
        let err = run(parse(&args(&format!("wal verify {log_s}"))).unwrap()).unwrap_err();
        match &err {
            VulnError::Corrupt(msg) => {
                assert!(msg.contains("torn tail at offset"), "{msg}");
            }
            other => panic!("expected Corrupt error, got {other:?}"),
        }

        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn parses_serve_robustness_options() {
        let c =
            parse(&args("serve g.txt --default-timeout-ms 250 --max-connections 8 --drain-ms 750"))
                .unwrap();
        match c {
            Command::Serve { options, .. } => {
                assert_eq!(options.default_timeout_ms, Some(250));
                assert_eq!(options.max_connections, 8);
                assert_eq!(options.drain_ms, 750);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&args("serve g.txt --default-timeout-ms soon")).is_err());
        assert!(parse(&args("serve g.txt --max-connections 0")).is_err());
        assert!(parse(&args("serve g.txt --max-connections many")).is_err());
        assert!(parse(&args("serve g.txt --drain-ms gently")).is_err());
    }

    #[test]
    fn parses_format_values() {
        for (value, expected) in [("human", OutputFormat::Human), ("json", OutputFormat::Json)] {
            match parse(&args(&format!("detect g.txt --k 3 --format {value}"))).unwrap() {
                Command::Detect { format, .. } => assert_eq!(format, expected),
                other => panic!("wrong command: {other:?}"),
            }
            match parse(&args(&format!("score g.txt --format {value}"))).unwrap() {
                Command::Score { format, .. } => assert_eq!(format, expected),
                other => panic!("wrong command: {other:?}"),
            }
        }
        assert!(parse(&args("detect g.txt --k 3 --format yaml")).is_err());
    }

    #[test]
    fn parses_block_words_values() {
        for (value, expected) in [
            ("auto", None),
            ("1", Some(BlockWords::W1)),
            ("2", Some(BlockWords::W2)),
            ("4", Some(BlockWords::W4)),
            ("8", Some(BlockWords::W8)),
        ] {
            let c = parse(&args(&format!("detect g.txt --k 3 --block-words {value}"))).unwrap();
            match c {
                Command::Detect { config, .. } => assert_eq!(config.block_words, expected),
                other => panic!("wrong command: {other:?}"),
            }
            let c = parse(&args(&format!("score g.txt --block-words {value}"))).unwrap();
            match c {
                Command::Score { config, .. } => assert_eq!(config.block_words, expected),
                other => panic!("wrong command: {other:?}"),
            }
        }
        assert!(parse(&args("detect g.txt --k 3 --block-words 3")).is_err());
        assert!(parse(&args("detect g.txt --k 3 --block-words wide")).is_err());
    }

    #[test]
    fn threads_default_to_available_parallelism() {
        for cmd in ["detect g.txt --k 3", "score g.txt"] {
            let threads = match parse(&args(cmd)).unwrap() {
                Command::Detect { config, .. } | Command::Score { config, .. } => config.threads,
                other => panic!("wrong command: {other:?}"),
            };
            assert_eq!(threads, default_threads().max(1), "{cmd}");
        }
    }

    #[test]
    fn detect_requires_k() {
        let e = parse(&args("detect g.txt")).unwrap_err();
        assert!(e.to_string().contains("--k"));
        assert!(matches!(e, VulnError::Usage(_)));
    }

    #[test]
    fn rejects_unknown_bits() {
        assert!(parse(&args("detect g.txt --k 3 --frobnicate yes")).is_err());
        assert!(parse(&args("warp g.txt")).is_err());
        assert!(parse(&args("detect g.txt --k 3 --algorithm quantum")).is_err());
        assert!(parse(&args("generate mars out.txt")).is_err());
        // Invalid (ε, δ) surfaces as the unified configuration error.
        assert!(matches!(
            parse(&args("detect g.txt --k 3 --epsilon 2.0")),
            Err(VulnError::Config(_))
        ));
    }

    #[test]
    fn parses_all_datasets() {
        for name in
            ["bitcoin", "facebook", "wiki", "p2p", "citation", "interbank", "guarantee", "fraud"]
        {
            let c = parse(&args(&format!("generate {name} out.txt"))).unwrap();
            assert!(matches!(c, Command::Generate { .. }), "{name}");
        }
    }

    #[test]
    fn end_to_end_generate_stats_detect_convert() {
        let dir = std::env::temp_dir().join("vulnds_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let txt = dir.join("g.txt").to_string_lossy().to_string();
        let bin = dir.join("g.bin").to_string_lossy().to_string();

        let msg =
            run(parse(&args(&format!("generate interbank {txt} --scale 1.0 --seed 3"))).unwrap())
                .unwrap();
        assert!(msg.contains("125 nodes"), "{msg}");

        let stats = run(parse(&args(&format!("stats {txt}"))).unwrap()).unwrap();
        assert!(stats.contains("nodes:            125"), "{stats}");
        assert!(stats.contains("SCCs"), "{stats}");

        let det =
            run(parse(&args(&format!("detect {txt} --k 5 --algorithm bsrbk --seed 2"))).unwrap())
                .unwrap();
        assert!(det.lines().count() >= 8, "{det}");
        assert!(det.contains("# algorithm BSRBK"), "{det}");
        assert!(det.contains("# coins coin-words"), "{det}");
        assert!(det.contains("tables built 1"), "{det}");
        assert!(det.contains("# blocks block-words"), "{det}");

        let conv = run(parse(&args(&format!("convert {txt} {bin}"))).unwrap()).unwrap();
        assert!(conv.contains("converted"));
        // Binary file loads and detects identically.
        let det2 =
            run(parse(&args(&format!("detect {bin} --k 5 --algorithm bsrbk --seed 2"))).unwrap())
                .unwrap();
        assert_eq!(
            det.lines().skip(1).collect::<Vec<_>>(),
            det2.lines().skip(1).collect::<Vec<_>>(),
            "text vs binary detection differ"
        );

        let bounds = run(parse(&args(&format!("bounds {txt} --order 2"))).unwrap()).unwrap();
        assert_eq!(bounds.lines().count(), 126); // header + 125 nodes

        let score =
            run(parse(&args(&format!("score {txt} --method bottomk --seed 4"))).unwrap()).unwrap();
        assert_eq!(score.lines().count(), 126);

        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn threads_do_not_change_cli_output() {
        let dir = std::env::temp_dir().join("vulnds_cli_threads_test");
        std::fs::create_dir_all(&dir).unwrap();
        let txt = dir.join("g.txt").to_string_lossy().to_string();
        run(parse(&args(&format!("generate interbank {txt} --scale 1.0"))).unwrap()).unwrap();
        // Rankings are byte-identical for any thread count; the
        // `#`-prefixed diagnostics (elapsed time, planned superblock
        // width, coin counters) reflect execution strategy and may
        // differ.
        for algorithm in ["sn", "bsrbk"] {
            let detect = |threads: usize| {
                run(parse(&args(&format!(
                    "detect {txt} --k 5 --algorithm {algorithm} --threads {threads} --seed 2"
                )))
                .unwrap())
                .unwrap()
            };
            let one = detect(1);
            let four = detect(4);
            assert_eq!(
                one.lines().filter(|l| !l.starts_with('#')).collect::<Vec<_>>(),
                four.lines().filter(|l| !l.starts_with('#')).collect::<Vec<_>>(),
                "{algorithm}: thread count changed the ranking"
            );
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn block_words_do_not_change_cli_ranking() {
        let dir = std::env::temp_dir().join("vulnds_cli_width_test");
        std::fs::create_dir_all(&dir).unwrap();
        let txt = dir.join("g.txt").to_string_lossy().to_string();
        run(parse(&args(&format!("generate interbank {txt} --scale 1.0"))).unwrap()).unwrap();
        let rankings: Vec<Vec<String>> = ["auto", "1", "2", "4", "8"]
            .iter()
            .map(|w| {
                let out = run(parse(&args(&format!(
                    "detect {txt} --k 5 --algorithm sn --seed 2 --block-words {w}"
                )))
                .unwrap())
                .unwrap();
                // Compare the ranking lines only: the coin/superblock
                // diagnostics legitimately vary with the width.
                out.lines().filter(|l| !l.starts_with('#')).map(|l| l.to_string()).collect()
            })
            .collect();
        for (i, r) in rankings.iter().enumerate().skip(1) {
            assert_eq!(r, &rankings[0], "width variant {i} changed the ranking");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn direction_does_not_change_cli_ranking() {
        let dir = std::env::temp_dir().join("vulnds_cli_direction_test");
        std::fs::create_dir_all(&dir).unwrap();
        let txt = dir.join("g.txt").to_string_lossy().to_string();
        run(parse(&args(&format!("generate interbank {txt} --scale 1.0"))).unwrap()).unwrap();
        let rankings: Vec<Vec<String>> = ["auto", "push", "pull"]
            .iter()
            .map(|d| {
                let out = run(parse(&args(&format!(
                    "detect {txt} --k 5 --algorithm sn --seed 2 --direction {d}"
                )))
                .unwrap())
                .unwrap();
                // Ranking lines only: the step/switch diagnostics
                // legitimately vary with the direction policy.
                out.lines().filter(|l| !l.starts_with('#')).map(|l| l.to_string()).collect()
            })
            .collect();
        for (i, r) in rankings.iter().enumerate().skip(1) {
            assert_eq!(r, &rankings[0], "direction variant {i} changed the ranking");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn relabel_detect_reports_original_ids() {
        let dir = std::env::temp_dir().join("vulnds_cli_relabel_test");
        std::fs::create_dir_all(&dir).unwrap();
        let txt = dir.join("g.txt").to_string_lossy().to_string();
        run(parse(&args(&format!("generate interbank {txt} --scale 1.0"))).unwrap()).unwrap();
        let out = run(parse(&args(&format!(
            "detect {txt} --k 5 --algorithm bsrbk --seed 2 --relabel bfs"
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("relabeled true"), "{out}");
        // Reported node ids are in the input labeling (125 nodes).
        for line in out.lines().filter(|l| !l.starts_with('#')) {
            let node: usize = line.split_whitespace().nth(1).unwrap().parse().unwrap();
            assert!(node < 125, "{line}");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn detect_validates_k_against_graph() {
        let dir = std::env::temp_dir().join("vulnds_cli_k_test");
        std::fs::create_dir_all(&dir).unwrap();
        let txt = dir.join("g.txt").to_string_lossy().to_string();
        run(parse(&args(&format!("generate interbank {txt} --scale 1.0"))).unwrap()).unwrap();
        let e = run(parse(&args(&format!("detect {txt} --k 0"))).unwrap()).unwrap_err();
        assert!(e.to_string().contains("--k must be"), "{e}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn load_reports_missing_file() {
        let e = run(Command::Stats { path: "/nonexistent/g.txt".into() }).unwrap_err();
        assert!(matches!(e, VulnError::File { .. }), "{e:?}");
        assert!(e.to_string().contains("/nonexistent/g.txt"), "{e}");
    }
}
