//! The `vulnds serve` front end: a zero-dependency query service over
//! one shared [`Detector`] session.
//!
//! Requests are newline-delimited JSON objects, answered by a pool of
//! worker threads that all query the **same** session through `&self` —
//! the 0.4 concurrency contract ([`Detector`] is `Send + Sync`, answers
//! are bit-identical to serial execution) is what makes this front end
//! a thin loop: no per-client session, no request serialization, and
//! every client compounds the same bounds/reduction/sampled-world
//! caches.
//!
//! ```text
//! # request (one per line; `id` is echoed back, any JSON value)
//! {"id": 1, "cmd": "detect", "k": 5, "algorithm": "bsrbk", "epsilon": 0.2, "seed": 7}
//! {"id": 2, "cmd": "batch", "requests": [{"k": 5, "algorithm": "sn"}, {"k": 9, "algorithm": "sn"}]}
//! {"id": 7, "cmd": "update", "self_risk": [[4, 0.5]], "edges": [[0, 5, 0.7]]}
//! {"id": 3, "cmd": "stats"}
//! {"id": 4, "cmd": "clear"}
//! {"id": 5, "k": 5, "timeout_ms": 50, "sample_cap": 100000}
//! {"id": 6, "cmd": "shutdown"}
//!
//! # response (one per line; order may differ from request order — match by id)
//! {"id": 1, "ok": true, "top_k": [{"node": 17, "score": 0.31}, …], "degraded": false, …}
//! {"id": 3, "ok": true, "session": {"queries": 2, "samples_drawn": 18000, …}, "queued": 0}
//! {"id": 5, "ok": true, "top_k": […], "degraded": true, "achieved_epsilon": 0.31, …}
//! {"id": 6, "ok": true, "draining": true}
//! {"id": 9, "ok": false, "error": "detect: \"k\" (positive integer) is required"}
//! {"id": 7, "ok": false, "error": "overloaded", "retry_after_ms": 100}
//! ```
//!
//! `cmd` defaults to `"detect"` when a `k` field is present. Responses
//! stream back as they complete, so a slow query never blocks a fast
//! one; clients that need pairing must send an `id`.
//!
//! ## Live updates & durability
//!
//! An `update` request batches probability changes (`self_risk` as
//! `[node, p]` pairs; `edge_prob` as `[edge, p]` pairs; `edges` as
//! `[u, v, p]` endpoint triples) into one [`GraphDelta`], applied
//! atomically: queries in flight finish bit-identically on the old
//! snapshot, later queries see the new epoch, and the answer carries
//! the committed `epoch`, `graph_version`, and the cache-revalidation
//! tally. With a [`UpdateLog`] attached (`--wal`), the delta is
//! appended to a checksummed write-ahead log and fsynced **before**
//! the engine applies it or the client sees the ack — see
//! [`crate::wal`] for the format and recovery contract.
//!
//! ## Deadlines, degradation, and drain
//!
//! Every request may carry a `timeout_ms` (monotonic deadline for the
//! query; capped by the server's `--default-timeout-ms` when set) and a
//! `sample_cap` (hard cap on Monte-Carlo worlds). A query cut short by
//! either returns a **degraded** answer: `"degraded": true`, the exact
//! `samples_used`, and the widened `achieved_epsilon` actually earned by
//! those samples. Replaying the same request with that `samples_used`
//! as its `sample_cap` reproduces the degraded answer bit-identically —
//! a cut-off pass is a valid (ε′, δ) answer, not a corrupted one.
//!
//! When the task queue is full the reader **sheds** instead of
//! buffering without bound: the request is answered immediately with
//! `{"error": "overloaded", "retry_after_ms": …}` and never queued.
//! A `shutdown` request (or end-of-input) stops the intake, then gives
//! in-flight queries a drain window (`--drain-ms`) to finish; whatever
//! is still running when it expires is cancelled at the next superblock
//! boundary and answered degraded. Either way every accepted request
//! gets a response and the loop exits cleanly.
//!
//! The same loop serves stdin (the default) or a TCP listener
//! (`--tcp addr`, one connection handler per client, all sharing the
//! one session). The JSON response encoders are shared with the CLI's
//! `--format json` mode, so scripted `vulnds detect` output and service
//! responses stay field-compatible.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ugraph::{EdgeId, GraphDelta, NodeId};
use vulnds_core::engine::{DetectRequest, DetectResponse, Detector};
use vulnds_core::{DeltaOutcome, EngineStats, RunStats, SessionStats, VulnError};
use vulnds_sampling::CancelToken;

use crate::cli::parse_algorithm;
use crate::json::Json;
use crate::wal::{self, Wal};

/// What one [`serve`] loop did, reported when its input ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Non-empty request lines answered (including error responses).
    pub requests: u64,
    /// Requests refused with `overloaded` because the queue was full.
    pub shed: u64,
    /// Whether the loop ended on a `shutdown` request (from this
    /// connection or, under TCP, any other) rather than end-of-input.
    pub shutdown: bool,
}

/// Tuning knobs for one serve loop (or one TCP listener's worth of
/// them). [`serve`] uses the defaults with an explicit worker count;
/// the CLI maps `--workers`, `--default-timeout-ms`, `--drain-ms`, and
/// `--max-connections` onto the fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker threads answering queries (per connection under TCP).
    pub workers: usize,
    /// Deadline applied to every query that does not bring its own
    /// `timeout_ms`; a request's own value is **capped** at this, so a
    /// client cannot opt out of the server's latency posture.
    pub default_timeout_ms: Option<u64>,
    /// How long in-flight queries may keep running after shutdown or
    /// end-of-input before being cancelled into degraded answers.
    pub drain_ms: u64,
    /// Concurrent TCP connections accepted before refusing with a
    /// structured `overloaded` response ([`serve_tcp`] only).
    pub max_connections: usize,
    /// Depth of the task and response queues; requests beyond it are
    /// shed, not buffered.
    pub queue_depth: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 1,
            default_timeout_ms: None,
            drain_ms: DEFAULT_DRAIN_MS,
            max_connections: MAX_CONNECTIONS,
            queue_depth: QUEUE_DEPTH,
        }
    }
}

/// Durability and compaction state shared by every connection's
/// `update` path. One lock serializes commits, which keeps the log's
/// record order identical to the engine's epoch order; queries never
/// take it.
pub struct UpdateLog {
    wal: Mutex<Wal>,
    /// Absolute epoch of the engine's base graph: the WAL's base epoch
    /// at startup. The engine counts epochs from 0 per process, so
    /// every externally-reported epoch is `offset + engine epoch`.
    offset: u64,
    /// Rotate (snapshot + truncate) after this many records since the
    /// last rotation.
    compact_every: Option<u64>,
}

impl UpdateLog {
    /// Wraps a recovered (or fresh) log. `wal.base_epoch()` must match
    /// the graph the engine session was built on — i.e. recovery has
    /// already replayed the log's records into the session.
    pub fn new(wal: Wal, compact_every: Option<u64>) -> UpdateLog {
        let offset = wal.base_epoch();
        UpdateLog { wal: Mutex::new(wal), offset, compact_every }
    }

    /// Absolute epoch of the engine's epoch 0.
    pub fn epoch_offset(&self) -> u64 {
        self.offset
    }

    /// Records currently in the log.
    pub fn records(&self) -> u64 {
        self.lock().records()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Wal> {
        // A thread that panicked mid-commit leaves the log in its
        // last-durable state, which is exactly what recovery tolerates.
        self.wal.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Commits one delta durably: validate against the live graph,
    /// append + fsync, then apply to the engine — so the ack implies
    /// the record is on disk, and a crash between append and apply
    /// replays a delta that was never acked (recovered state may run
    /// *ahead* of the acked history, never behind it).
    pub fn commit(
        &self,
        detector: &Detector,
        delta: &GraphDelta,
    ) -> Result<DeltaOutcome, VulnError> {
        let mut log = self.lock();
        delta.validate(&detector.graph())?;
        let epoch = self.offset + detector.epoch() + 1;
        log.append(epoch, delta).map_err(|e| VulnError::Usage(format!("wal append: {e}")))?;
        let outcome = detector.apply_delta(delta)?;
        if let Some(every) = self.compact_every {
            if log.since_rotate() >= every {
                // Best-effort: a failed compaction leaves a longer log,
                // not a broken one, and the commit is already durable.
                let snapshot = wal::snapshot_path(log.path());
                if wal::write_snapshot(&detector.graph(), &snapshot).is_ok() {
                    let _ = log.rotate(epoch);
                }
            }
        }
        Ok(outcome)
    }
}

/// Longest request line the service buffers (1 MiB). A client that
/// streams more without a newline gets an error response for that line
/// and the excess is discarded unbuffered, so one connection can never
/// grow the server's memory without bound.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Default depth of the task and response queues between the reader,
/// the worker pool, and the writer. A client that floods past it is
/// shed with `overloaded` responses instead of growing server memory:
/// at most `2 · queue_depth` lines are ever in flight per connection.
pub const QUEUE_DEPTH: usize = 256;

/// Default hard cap on any one query's sample budget in serve mode
/// (`VulnConfig::max_samples`; override with `--max-samples`). Clients
/// choose `ε`/`δ` per request, and an `ε` of `1e-9` is a valid value
/// whose Equation-3 budget would pin a worker for years — the cap
/// turns that into a bounded (if cap-truncated) answer instead of a
/// denial of service. 5M worlds ≈ tight-contract territory for the
/// graph sizes a single node serves.
pub const DEFAULT_SERVE_MAX_SAMPLES: u64 = 5_000_000;

/// Default concurrent-TCP-connection cap (override with
/// `--max-connections`); further clients are refused with one
/// structured `overloaded` line and disconnected, so hostile connection
/// floods cannot multiply worker pools without bound (threads per
/// connection = `workers` + 3).
pub const MAX_CONNECTIONS: usize = 64;

/// Default drain window after shutdown/end-of-input (override with
/// `--drain-ms`): long enough for well-behaved queries to finish, short
/// enough that a pinned worker degrades instead of stalling exit.
pub const DEFAULT_DRAIN_MS: u64 = 2_000;

/// `retry_after_ms` hint attached to every `overloaded` refusal — one
/// queue's worth of typical service time, not a promise.
pub const RETRY_AFTER_MS: u64 = 100;

/// TCP read-poll interval: how often an idle connection handler wakes
/// to check for a server-wide shutdown.
const TCP_POLL_MS: u64 = 200;

/// Cross-connection stop signal: set by the first `shutdown` request
/// (or by the acceptor) and polled by every reader.
#[derive(Default)]
struct ServeControl {
    stop: AtomicBool,
}

impl ServeControl {
    fn stop_requested(&self) -> bool {
        // ORDERING: Acquire — pairs with the Release store in the
        // shutdown path so a reader that observes the flag also
        // observes everything the requester did before setting it.
        self.stop.load(Ordering::Acquire)
    }

    fn request_stop(&self) {
        // ORDERING: Release — see `stop_requested`.
        self.stop.store(true, Ordering::Release);
    }
}

/// How one [`read_request_line`] call ended.
enum LineRead {
    /// Input is exhausted.
    Eof,
    /// `buf` holds one complete request line.
    Line,
    /// The line exceeded [`MAX_REQUEST_BYTES`]; its bytes were drained
    /// and dropped.
    Oversized,
    /// A stop was requested while waiting for bytes.
    Stopped,
}

/// A retryable "no bytes yet" read error: the poll interval expiring on
/// a TCP stream with a read timeout, or a plain EINTR.
fn retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::Interrupted
    )
}

/// Reads one `\n`-terminated line into `buf` (cleared first), buffering
/// at most [`MAX_REQUEST_BYTES`]; an oversized line's excess bytes are
/// consumed and dropped without being stored. Timed-out reads (TCP
/// streams poll at [`TCP_POLL_MS`]) retry until bytes arrive or
/// `stopped` reports a shutdown — partial bytes survive the retries, so
/// a slow-loris client neither blocks shutdown nor corrupts framing.
fn read_request_line(
    input: &mut impl BufRead,
    buf: &mut Vec<u8>,
    stopped: &impl Fn() -> bool,
) -> std::io::Result<LineRead> {
    buf.clear();
    loop {
        // +2: room for a CRLF terminator on a content line of exactly
        // MAX_REQUEST_BYTES, so the LF- and CRLF-framed forms of the
        // same at-limit request are judged identically.
        let room = (MAX_REQUEST_BYTES + 2).saturating_sub(buf.len());
        if room == 0 {
            break; // at the limit with no newline: oversized
        }
        match input.by_ref().take(room as u64).read_until(b'\n', buf) {
            Ok(0) if buf.is_empty() => return Ok(LineRead::Eof),
            Ok(0) => break, // EOF mid-line: serve what arrived
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    break;
                }
                // No newline yet: the take limit was hit (loop exits
                // via room == 0) or EOF follows (next read returns 0).
            }
            Err(e) if retryable(&e) => {
                if stopped() {
                    return Ok(LineRead::Stopped);
                }
            }
            Err(e) => return Err(e),
        }
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    }
    if buf.len() <= MAX_REQUEST_BYTES {
        return Ok(LineRead::Line);
    }
    // Oversized: drain the rest of the line without buffering it.
    buf.clear();
    loop {
        match input.fill_buf() {
            Ok(chunk) => {
                if chunk.is_empty() {
                    return Ok(LineRead::Oversized);
                }
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(i) => {
                        input.consume(i + 1);
                        return Ok(LineRead::Oversized);
                    }
                    None => {
                        let len = chunk.len();
                        input.consume(len);
                    }
                }
            }
            Err(e) if retryable(&e) => {
                if stopped() {
                    return Ok(LineRead::Stopped);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// One unit of work handed from the reader to the pool: a parsed
/// request, or a parse failure to be answered in request order.
enum Task {
    Request(Json),
    Malformed { id: Json, error: String },
}

impl Task {
    fn id(&self) -> Json {
        match self {
            Task::Request(json) => json.get("id").cloned().unwrap_or(Json::Null),
            Task::Malformed { id, .. } => id.clone(),
        }
    }
}

/// Per-loop context the workers answer requests against.
#[derive(Clone, Copy)]
struct ServeCtx<'a> {
    detector: &'a Detector,
    /// Parent token for every query: cancelled when the drain window
    /// expires, turning in-flight work into degraded answers.
    drain: &'a CancelToken,
    default_timeout_ms: Option<u64>,
    /// Tasks accepted but not yet popped by a worker (queue gauge).
    queued: &'a AtomicU64,
    /// Write-ahead log for `update` commits; `None` serves updates
    /// non-durably (applied atomically, lost on restart).
    updates: Option<&'a UpdateLog>,
}

/// Answers newline-delimited JSON requests from `input` on a pool of
/// `workers` threads sharing `detector` — [`serve_with`] with default
/// options. Kept as the simplest entry point (and the one the in-repo
/// tests exercise).
pub fn serve(
    detector: &Detector,
    workers: usize,
    input: impl BufRead,
    output: impl Write + Send,
) -> Result<ServeSummary, VulnError> {
    serve_with(detector, &ServeOptions { workers, ..ServeOptions::default() }, input, output)
}

/// Answers newline-delimited JSON requests from `input` on
/// `options.workers` pool threads sharing `detector`, writing one JSON
/// response line per request to `output` as each completes. Returns
/// when `input` ends or a `shutdown` request arrives, after draining
/// in-flight queries under `options.drain_ms`.
pub fn serve_with(
    detector: &Detector,
    options: &ServeOptions,
    input: impl BufRead,
    output: impl Write + Send,
) -> Result<ServeSummary, VulnError> {
    serve_inner(detector, options, None, input, output, &ServeControl::default())
}

/// [`serve_with`] plus a write-ahead log: `update` commits append to
/// `updates` (fsync per its policy) before being acked.
pub fn serve_durable(
    detector: &Detector,
    options: &ServeOptions,
    updates: Option<&UpdateLog>,
    input: impl BufRead,
    output: impl Write + Send,
) -> Result<ServeSummary, VulnError> {
    serve_inner(detector, options, updates, input, output, &ServeControl::default())
}

fn serve_inner(
    detector: &Detector,
    options: &ServeOptions,
    updates: Option<&UpdateLog>,
    input: impl BufRead,
    output: impl Write + Send,
    control: &ServeControl,
) -> Result<ServeSummary, VulnError> {
    let workers = options.workers.max(1);
    let queue_depth = options.queue_depth.max(1);
    let requests = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let queued = AtomicU64::new(0);
    let drain = CancelToken::new();
    let shutdown = AtomicBool::new(false);
    let io_result: std::io::Result<()> = std::thread::scope(|s| {
        let (task_tx, task_rx) = mpsc::sync_channel::<Task>(queue_depth);
        let task_rx = Arc::new(Mutex::new(task_rx));
        let (response_tx, response_rx) = mpsc::sync_channel::<String>(queue_depth);
        let ctx = ServeCtx {
            detector,
            drain: &drain,
            default_timeout_ms: options.default_timeout_ms,
            queued: &queued,
            updates,
        };
        for _ in 0..workers {
            let task_rx = Arc::clone(&task_rx);
            let response_tx = response_tx.clone();
            let requests = &requests;
            s.spawn(move || loop {
                // Hold the receiver lock only to pop one task, not
                // while answering it.
                let task = match task_rx.lock() {
                    Ok(rx) => rx.recv(),
                    Err(_) => break,
                };
                let Ok(task) = task else { break };
                // ORDERING: Relaxed — a momentary gauge; the reader's
                // increment for this task happened before its send.
                ctx.queued.fetch_sub(1, Ordering::Relaxed);
                // ORDERING: Relaxed — a pure tally; the final read
                // happens after the scope joins every thread.
                requests.fetch_add(1, Ordering::Relaxed);
                let response = match task {
                    Task::Request(json) => respond_parsed(&ctx, &json),
                    Task::Malformed { id, error } => failure(id, error),
                };
                if response_tx.send(response.to_string()).is_err() {
                    break;
                }
            });
        }
        let inline_tx = response_tx.clone();
        drop(response_tx);
        let writer = s.spawn(move || -> std::io::Result<()> {
            let mut output = output;
            for line in response_rx {
                writeln!(output, "{line}")?;
                output.flush()?;
            }
            Ok(())
        });
        let mut input = input;
        let mut buf = Vec::new();
        let stop_observed = || control.stop_requested();
        loop {
            match read_request_line(&mut input, &mut buf, &stop_observed)? {
                LineRead::Eof => break,
                LineRead::Stopped => {
                    // Another connection asked the server to shut down.
                    // ORDERING: Relaxed — read after the scope joins.
                    shutdown.store(true, Ordering::Relaxed);
                    break;
                }
                LineRead::Oversized => {
                    // Answer in-line (the request is gone, there is
                    // nothing to hand a worker) and keep serving.
                    // ORDERING: Relaxed — same pure tally as above.
                    requests.fetch_add(1, Ordering::Relaxed);
                    let error = failure(
                        Json::Null,
                        format!("request line exceeds {MAX_REQUEST_BYTES} bytes"),
                    );
                    if inline_tx.send(error.to_string()).is_err() {
                        break;
                    }
                }
                LineRead::Line => {
                    let line = String::from_utf8_lossy(&buf);
                    if line.trim().is_empty() {
                        continue;
                    }
                    let task = match Json::parse_salvaging_id(&line) {
                        (Ok(json), _) => {
                            if json.get("cmd").and_then(Json::as_str) == Some("shutdown") {
                                // Ack, stop the intake everywhere, and
                                // fall through to the drain below.
                                // ORDERING: Relaxed — pure tallies.
                                requests.fetch_add(1, Ordering::Relaxed);
                                shutdown.store(true, Ordering::Relaxed);
                                let id = json.get("id").cloned().unwrap_or(Json::Null);
                                let ack = Json::obj([
                                    ("id", id),
                                    ("ok", Json::Bool(true)),
                                    ("draining", Json::Bool(true)),
                                ]);
                                let _ = inline_tx.send(ack.to_string());
                                control.request_stop();
                                break;
                            }
                            Task::Request(json)
                        }
                        (Err(e), salvaged) => Task::Malformed {
                            id: salvaged.unwrap_or(Json::Null),
                            error: e.to_string(),
                        },
                    };
                    // ORDERING: Relaxed — incremented before the send
                    // so a worker's decrement can never observe the
                    // gauge at zero first.
                    queued.fetch_add(1, Ordering::Relaxed);
                    match task_tx.try_send(task) {
                        Ok(()) => {}
                        Err(TrySendError::Full(task)) => {
                            // Shed: answer now, never queue. Bounded
                            // memory beats unbounded latency.
                            // ORDERING: Relaxed — gauge + tallies.
                            queued.fetch_sub(1, Ordering::Relaxed);
                            shed.fetch_add(1, Ordering::Relaxed);
                            requests.fetch_add(1, Ordering::Relaxed);
                            detector.note_shed();
                            let refusal = overloaded(task.id());
                            if inline_tx.send(refusal.to_string()).is_err() {
                                break;
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            // ORDERING: Relaxed — gauge, loop is ending.
                            queued.fetch_sub(1, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            }
        }
        drop(inline_tx);
        drop(task_tx);
        // Drain watchdog: give in-flight queries `drain_ms` to finish,
        // then cancel them into degraded answers. The writer finishing
        // first disconnects the channel and retires the watchdog
        // without cancelling anything.
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let drain_ms = options.drain_ms;
        let drain_token = &drain;
        s.spawn(move || {
            if let Err(RecvTimeoutError::Timeout) =
                done_rx.recv_timeout(Duration::from_millis(drain_ms))
            {
                drain_token.cancel();
            }
        });
        let joined = writer.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        drop(done_tx);
        joined
    });
    io_result.map_err(|e| VulnError::Usage(format!("serve: I/O error: {e}")))?;
    Ok(ServeSummary {
        // ORDERING: Relaxed — the scope above joined every writer of
        // these counters, so the reads race with nothing.
        requests: requests.load(Ordering::Relaxed),
        shed: shed.load(Ordering::Relaxed),
        shutdown: shutdown.load(Ordering::Relaxed),
    })
}

/// Accepts TCP connections, answering each client's newline-delimited
/// JSON requests with a **per-connection** `options.workers`-thread
/// pool over the one shared `detector`. Connections are served
/// concurrently (capped at `options.max_connections`; further clients
/// get one structured `overloaded` line) and all compound the same
/// session caches. Returns cleanly — after draining every connection —
/// once any client sends a `shutdown` request.
pub fn serve_tcp(
    detector: &Detector,
    listener: TcpListener,
    options: &ServeOptions,
    updates: Option<&UpdateLog>,
) -> Result<(), VulnError> {
    /// Releases the connection slot on drop — including when the
    /// handler unwinds — so a panicking connection can never leak one
    /// of the `max_connections` slots permanently.
    struct SlotRelease<'a>(&'a AtomicU64);
    impl Drop for SlotRelease<'_> {
        fn drop(&mut self) {
            // ORDERING: AcqRel — pairs with the acceptor's RMWs so the
            // open-connection count is exact and the cap cannot be
            // overshot by a stale read.
            self.0.fetch_sub(1, Ordering::AcqRel);
        }
    }

    let max_connections = options.max_connections.max(1);
    let control = ServeControl::default();
    let addr = listener.local_addr().ok();
    let open = AtomicU64::new(0);
    std::thread::scope(|s| {
        for stream in listener.incoming() {
            if control.stop_requested() {
                break; // a handler observed `shutdown` and woke us
            }
            let Ok(mut stream) = stream else { continue };
            // ORDERING: AcqRel — reserve-then-release must be exact
            // RMWs against concurrent SlotRelease drops, or a refusal
            // storm could leak slots past the cap.
            if open.fetch_add(1, Ordering::AcqRel) >= max_connections as u64 {
                open.fetch_sub(1, Ordering::AcqRel);
                let _ = writeln!(stream, "{}", overloaded(Json::Null));
                continue;
            }
            let open = &open;
            let control = &control;
            s.spawn(move || {
                let _slot = SlotRelease(open);
                // Poll-friendly reads: an idle connection observes a
                // server-wide shutdown within TCP_POLL_MS instead of
                // blocking in read() forever.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(TCP_POLL_MS)));
                // Per-connection I/O errors drop the connection, not
                // the service.
                let summary = match stream.try_clone() {
                    Ok(reader) => serve_inner(
                        detector,
                        options,
                        updates,
                        BufReader::new(reader),
                        stream,
                        control,
                    )
                    .ok(),
                    Err(_) => None,
                };
                // The acceptor blocks in accept(); a handler that saw
                // the shutdown wakes it with a throwaway connection so
                // it can observe the stop flag and exit.
                if summary.is_some_and(|sm| sm.shutdown) {
                    if let Some(addr) = addr {
                        let _ = std::net::TcpStream::connect(addr);
                    }
                }
            });
        }
        Ok(())
    })
}

/// Shapes one engine/parse failure as a response line.
fn failure(id: Json, error: impl Into<String>) -> Json {
    Json::obj([("id", id), ("ok", Json::Bool(false)), ("error", Json::Str(error.into()))])
}

/// Shapes a load-shed refusal: machine-matchable `error` plus a
/// back-off hint.
fn overloaded(id: Json) -> Json {
    Json::obj([
        ("id", id),
        ("ok", Json::Bool(false)),
        ("error", Json::Str("overloaded".to_string())),
        ("retry_after_ms", RETRY_AFTER_MS.into()),
    ])
}

/// Answers one parsed request as a response object; engine errors
/// become `ok: false` responses rather than killing the connection.
fn respond_parsed(ctx: &ServeCtx<'_>, request: &Json) -> Json {
    let id = request.get("id").cloned().unwrap_or(Json::Null);
    let mut fields = vec![("id".to_string(), id)];
    match dispatch(ctx, request) {
        Ok(Json::Obj(payload)) => {
            fields.push(("ok".to_string(), Json::Bool(true)));
            fields.extend(payload);
        }
        Ok(other) => {
            fields.push(("ok".to_string(), Json::Bool(true)));
            fields.push(("result".to_string(), other));
        }
        Err(e) => {
            fields.push(("ok".to_string(), Json::Bool(false)));
            fields.push(("error".to_string(), Json::Str(e.to_string())));
        }
    }
    Json::Obj(fields)
}

/// Applies the serve loop's query policy to one parsed request: the
/// server's default timeout caps the client's (so a client cannot opt
/// out of the latency posture), and every query hangs off the drain
/// token so shutdown can cancel it into a degraded answer.
fn scoped(mut request: DetectRequest, ctx: &ServeCtx<'_>) -> DetectRequest {
    request.timeout_ms = match (request.timeout_ms, ctx.default_timeout_ms) {
        (Some(t), Some(cap)) => Some(t.min(cap)),
        (t, cap) => t.or(cap),
    };
    request.cancel = Some(ctx.drain.clone());
    request
}

/// Routes one parsed request to the engine.
fn dispatch(ctx: &ServeCtx<'_>, request: &Json) -> Result<Json, VulnError> {
    let detector = ctx.detector;
    let cmd = match request.get("cmd").map(|c| (c, c.as_str())) {
        None if request.get("k").is_some() => "detect",
        None => "",
        Some((_, Some(s))) => s,
        Some((_, None)) => return Err(usage("\"cmd\" must be a string")),
    };
    match cmd {
        "detect" => {
            let response = detector.detect(&scoped(parse_detect(request)?, ctx))?;
            Ok(detect_response_json(&response))
        }
        "batch" => {
            let items = request
                .get("requests")
                .and_then(Json::as_array)
                .ok_or_else(|| usage("batch: \"requests\" (array) is required"))?;
            let parsed: Vec<DetectRequest> = items
                .iter()
                .map(|item| parse_detect(item).map(|r| scoped(r, ctx)))
                .collect::<Result<_, _>>()?;
            let responses = detector.detect_many(&parsed)?;
            Ok(Json::obj([(
                "responses",
                Json::Arr(responses.iter().map(detect_response_json).collect()),
            )]))
        }
        "update" => {
            let delta = parse_update(detector, request)?;
            let outcome = match ctx.updates {
                Some(updates) => updates.commit(detector, &delta)?,
                None => detector.apply_delta(&delta)?,
            };
            let offset = ctx.updates.map_or(0, UpdateLog::epoch_offset);
            Ok(Json::obj([
                ("epoch", (offset + outcome.epoch).into()),
                ("graph_version", outcome.graph_version.into()),
                ("revalidated", outcome.revalidated.into()),
                ("invalidated", outcome.invalidated.into()),
                ("durable", ctx.updates.is_some().into()),
            ]))
        }
        "stats" => {
            let mut session = detector.session_stats();
            session.epoch += ctx.updates.map_or(0, UpdateLog::epoch_offset);
            Ok(Json::obj([
                ("session", session_stats_json(&session)),
                ("wal_records", ctx.updates.map_or(0, UpdateLog::records).into()),
                // ORDERING: Relaxed — a momentary gauge for operators.
                ("queued", ctx.queued.load(Ordering::Relaxed).into()),
            ]))
        }
        "clear" => {
            detector.clear_cache();
            Ok(Json::obj([("cleared", Json::Bool(true))]))
        }
        other => {
            Err(usage(&format!("unknown cmd {other:?} (detect|batch|update|stats|clear|shutdown)")))
        }
    }
}

/// Extracts a [`GraphDelta`] from an `update` request. Three change
/// lists are accepted, all optional but at least one required:
/// `self_risk` as `[node, p]` pairs, `edge_prob` as `[edge, p]` pairs
/// addressing edges by index, and `edges` as `[u, v, p]` triples
/// addressing edges by their endpoints.
fn parse_update(detector: &Detector, request: &Json) -> Result<GraphDelta, VulnError> {
    let pair = |item: &Json, what: &str| -> Result<(u32, f64), VulnError> {
        let items = item
            .as_array()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| usage(&format!("update: {what} entries must be [id, p] pairs")))?;
        let id = items[0]
            .as_u64()
            .filter(|&id| id <= u32::MAX as u64)
            .ok_or_else(|| usage(&format!("update: {what} ids must be u32 integers")))?;
        let p = items[1]
            .as_f64()
            .ok_or_else(|| usage(&format!("update: {what} probabilities must be numbers")))?;
        Ok((id as u32, p))
    };
    let mut delta = GraphDelta::new();
    if let Some(v) = request.get("self_risk") {
        let items = v.as_array().ok_or_else(|| usage("update: \"self_risk\" must be an array"))?;
        for item in items {
            let (id, p) = pair(item, "self_risk")?;
            delta = delta.set_self_risk(NodeId(id), p);
        }
    }
    if let Some(v) = request.get("edge_prob") {
        let items = v.as_array().ok_or_else(|| usage("update: \"edge_prob\" must be an array"))?;
        for item in items {
            let (id, p) = pair(item, "edge_prob")?;
            delta = delta.set_edge_prob(EdgeId(id), p);
        }
    }
    if let Some(v) = request.get("edges") {
        let items = v.as_array().ok_or_else(|| usage("update: \"edges\" must be an array"))?;
        let graph = detector.graph();
        for item in items {
            let triple = item
                .as_array()
                .filter(|a| a.len() == 3)
                .ok_or_else(|| usage("update: \"edges\" entries must be [u, v, p] triples"))?;
            let endpoint = |j: &Json| {
                j.as_u64()
                    .filter(|&id| id <= u32::MAX as u64)
                    .ok_or_else(|| usage("update: edge endpoints must be u32 integers"))
            };
            let (u, v) = (endpoint(&triple[0])? as u32, endpoint(&triple[1])? as u32);
            let p = triple[2]
                .as_f64()
                .ok_or_else(|| usage("update: edge probabilities must be numbers"))?;
            let edge = graph
                .find_edge(NodeId(u), NodeId(v))
                .ok_or_else(|| usage(&format!("update: no edge {u} -> {v} in the graph")))?;
            delta = delta.set_edge_prob(edge, p);
        }
    }
    if delta.is_empty() {
        return Err(usage("update: needs \"self_risk\", \"edge_prob\", or \"edges\""));
    }
    Ok(delta)
}

fn usage(msg: &str) -> VulnError {
    VulnError::Usage(msg.to_string())
}

/// Extracts a [`DetectRequest`] from a request object (used both for
/// `detect` and for each element of `batch`'s `requests`).
fn parse_detect(request: &Json) -> Result<DetectRequest, VulnError> {
    let k = request
        .get("k")
        .and_then(Json::as_u64)
        .filter(|&k| k > 0)
        .ok_or_else(|| usage("detect: \"k\" (positive integer) is required"))? as usize;
    let algorithm = match request.get("algorithm") {
        None => vulnds_core::AlgorithmKind::BottomK,
        Some(a) => parse_algorithm(
            a.as_str().ok_or_else(|| usage("detect: \"algorithm\" must be a string"))?,
        )?,
    };
    let mut parsed = DetectRequest::new(k, algorithm);
    if let Some(v) = request.get("epsilon") {
        parsed = parsed
            .with_epsilon(v.as_f64().ok_or_else(|| usage("detect: \"epsilon\" must be a number"))?);
    }
    if let Some(v) = request.get("delta") {
        parsed = parsed
            .with_delta(v.as_f64().ok_or_else(|| usage("detect: \"delta\" must be a number"))?);
    }
    if let Some(v) = request.get("seed") {
        parsed = parsed
            .with_seed(v.as_u64().ok_or_else(|| usage("detect: \"seed\" must be an integer"))?);
    }
    if let Some(v) = request.get("timeout_ms") {
        parsed = parsed.with_timeout_ms(
            v.as_u64()
                .ok_or_else(|| usage("detect: \"timeout_ms\" must be a non-negative integer"))?,
        );
    }
    if let Some(v) = request.get("sample_cap") {
        parsed = parsed.with_sample_cap(
            v.as_u64()
                .filter(|&c| c > 0)
                .ok_or_else(|| usage("detect: \"sample_cap\" must be a positive integer"))?,
        );
    }
    if let Some(v) = request.get("candidates") {
        let items = v.as_array().ok_or_else(|| usage("detect: \"candidates\" must be an array"))?;
        let mut candidates = Vec::with_capacity(items.len());
        for item in items {
            let id = item
                .as_u64()
                .filter(|&id| id <= u32::MAX as u64)
                .ok_or_else(|| usage("detect: candidate ids must be u32 integers"))?;
            candidates.push(NodeId(id as u32));
        }
        parsed = parsed.with_candidates(candidates);
    }
    Ok(parsed)
}

/// Encodes a detection answer — the shared shape of `serve` responses
/// and `vulnds detect --format json` output.
pub fn detect_response_json(response: &DetectResponse) -> Json {
    Json::obj([
        (
            "top_k",
            Json::Arr(
                response
                    .top_k
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("node", Json::from(s.node.0 as u64)),
                            ("score", s.score.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("degraded", response.degraded.into()),
        // Non-finite (no samples at all) renders as null by design.
        ("achieved_epsilon", response.achieved_epsilon.into()),
        ("stats", run_stats_json(&response.stats)),
        ("engine", engine_stats_json(&response.engine)),
    ])
}

/// Encodes the algorithm-level diagnostics of one answer.
pub fn run_stats_json(stats: &RunStats) -> Json {
    Json::obj([
        ("algorithm", stats.algorithm.label().into()),
        ("sample_budget", stats.sample_budget.into()),
        ("samples_used", stats.samples_used.into()),
        ("candidates", stats.candidates.into()),
        ("verified", stats.verified.into()),
        ("early_stopped", stats.early_stopped.into()),
        ("elapsed_ms", (stats.elapsed.as_secs_f64() * 1e3).into()),
    ])
}

/// Encodes the session-cache diagnostics of one answer.
pub fn engine_stats_json(engine: &EngineStats) -> Json {
    Json::obj([
        ("samples_drawn", engine.samples_drawn.into()),
        ("samples_reused", engine.samples_reused.into()),
        ("bounds_reused", engine.bounds_reused.into()),
        ("reduction_reused", engine.reduction_reused.into()),
        ("coin_words_synthesized", engine.coin_words_synthesized.into()),
        ("lazy_edge_words_skipped", engine.lazy_edge_words_skipped.into()),
        ("block_words", engine.block_words.into()),
        ("superblocks", engine.superblocks.into()),
        ("push_steps", engine.push_steps.into()),
        ("pull_steps", engine.pull_steps.into()),
        ("direction_switches", engine.direction_switches.into()),
        ("relabel_applied", engine.relabel_applied.into()),
        ("epoch", engine.epoch.into()),
        ("graph_version", engine.graph_version.into()),
    ])
}

/// Encodes cumulative session counters (the `stats` command, and the
/// session line of `--format json` CLI output).
pub fn session_stats_json(session: &SessionStats) -> Json {
    Json::obj([
        ("queries", session.queries.into()),
        ("queries_degraded", session.queries_degraded.into()),
        ("queries_cancelled", session.queries_cancelled.into()),
        ("requests_shed", session.requests_shed.into()),
        ("in_flight", session.in_flight.into()),
        ("samples_drawn", session.samples_drawn.into()),
        ("samples_reused", session.samples_reused.into()),
        ("bounds_computed", session.bounds_computed.into()),
        ("bounds_reused", session.bounds_reused.into()),
        ("reductions_computed", session.reductions_computed.into()),
        ("reductions_reused", session.reductions_reused.into()),
        ("coin_tables_built", session.coin_tables_built.into()),
        ("coin_words_synthesized", session.coin_words_synthesized.into()),
        ("lazy_edge_words_skipped", session.lazy_edge_words_skipped.into()),
        ("superblocks_evaluated", session.superblocks_evaluated.into()),
        ("widest_block_words", session.widest_block_words.into()),
        ("cache_waits", session.cache_waits.into()),
        ("builds_deduped", session.builds_deduped.into()),
        ("concurrent_peak", session.concurrent_peak.into()),
        ("push_steps", session.push_steps.into()),
        ("pull_steps", session.pull_steps.into()),
        ("direction_switches", session.direction_switches.into()),
        ("relabel_applied", session.relabel_applied.into()),
        ("epoch", session.epoch.into()),
        ("graph_version", session.graph_version.into()),
        ("deltas_applied", session.deltas_applied.into()),
        ("caches_revalidated", session.caches_revalidated.into()),
        ("caches_invalidated", session.caches_invalidated.into()),
    ])
}

/// Encodes all-node scores (`vulnds score --format json`).
pub fn scores_json(method: &str, scores: &[f64]) -> Json {
    Json::obj([
        ("method", method.into()),
        ("scores", Json::Arr(scores.iter().map(|&s| Json::Num(s)).collect())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnds_core::AlgorithmKind;
    use vulnds_datasets::Dataset;

    fn service() -> Detector {
        let graph = Dataset::Interbank.generate_scaled(3, 1.0);
        Detector::builder(graph).seed(7).threads(1).build().unwrap()
    }

    /// Runs a full serve loop over in-memory I/O and returns the
    /// response lines parsed back to JSON.
    fn run_lines(detector: &Detector, workers: usize, input: &str) -> Vec<Json> {
        run_lines_with(detector, &ServeOptions { workers, ..ServeOptions::default() }, input).1
    }

    fn run_lines_with(
        detector: &Detector,
        options: &ServeOptions,
        input: &str,
    ) -> (ServeSummary, Vec<Json>) {
        let mut output = Vec::new();
        let summary =
            serve_with(detector, options, input.as_bytes(), &mut output).expect("serve runs");
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<Json> =
            text.lines().map(|l| Json::parse(l).expect("valid response JSON")).collect();
        assert_eq!(summary.requests as usize, lines.len());
        (summary, lines)
    }

    fn by_id(lines: &[Json], id: u64) -> &Json {
        lines
            .iter()
            .find(|l| l.get("id").and_then(Json::as_u64) == Some(id))
            .unwrap_or_else(|| panic!("no response with id {id}"))
    }

    #[test]
    fn answers_detect_stats_and_errors() {
        let detector = service();
        let lines = run_lines(
            &detector,
            2,
            concat!(
                "{\"id\": 1, \"cmd\": \"detect\", \"k\": 5, \"algorithm\": \"bsrbk\"}\n",
                "\n", // blank lines are skipped, not errors
                "{\"id\": 2, \"k\": 3, \"algorithm\": \"sn\"}\n", // cmd defaults to detect
                "{\"id\": 3, \"cmd\": \"stats\"}\n",
                "{\"id\": 4, \"cmd\": \"warp\"}\n",
                "{\"id\": 5, \"cmd\": \"detect\"}\n", // missing k
                "not json at all\n",
            ),
        );
        assert_eq!(lines.len(), 6);

        let detect = by_id(&lines, 1);
        assert_eq!(detect.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(detect.get("top_k").and_then(Json::as_array).map(<[Json]>::len), Some(5));
        assert_eq!(detect.get("degraded").and_then(Json::as_bool), Some(false));
        assert_eq!(
            detect.get("stats").and_then(|s| s.get("algorithm")).and_then(Json::as_str),
            Some("BSRBK")
        );
        assert!(detect.get("engine").and_then(|e| e.get("samples_drawn")).is_some());

        assert_eq!(by_id(&lines, 2).get("ok").and_then(Json::as_bool), Some(true));

        let stats = by_id(&lines, 3);
        // Workers race with the stats request; the counter is whatever
        // it was at that moment, but the field must exist and be sane.
        let queries =
            stats.get("session").and_then(|s| s.get("queries")).and_then(Json::as_u64).unwrap();
        assert!(queries <= 3);
        // The robustness gauges ride along on every stats answer.
        for gauge in ["queries_degraded", "queries_cancelled", "requests_shed", "in_flight"] {
            assert!(
                stats.get("session").and_then(|s| s.get(gauge)).and_then(Json::as_u64).is_some(),
                "missing session gauge {gauge}"
            );
        }
        assert!(stats.get("queued").and_then(Json::as_u64).is_some());

        for id in [4, 5] {
            let err = by_id(&lines, id);
            assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false), "{err}");
            assert!(err.get("error").is_some());
        }
        // The unparseable line still gets a response, with a null id.
        let bad = lines
            .iter()
            .find(|l| l.get("id") == Some(&Json::Null))
            .expect("malformed line answered");
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn syntax_errors_echo_the_id_parsed_before_the_error() {
        let detector = service();
        let lines = run_lines(
            &detector,
            1,
            concat!(
                "{\"id\": 77, \"cmd\": \"detect\", \"k\": }\n", // id seen, then broken
                "{\"k\": , \"id\": 78}\n",                      // broken before the id
            ),
        );
        let with_id = by_id(&lines, 77);
        assert_eq!(with_id.get("ok").and_then(Json::as_bool), Some(false));
        assert!(with_id.get("error").is_some());
        let without = lines.iter().find(|l| l.get("id") == Some(&Json::Null)).unwrap();
        assert_eq!(without.get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn concurrent_service_answers_match_direct_calls() {
        let detector = service();
        let reference = service();
        let mut input = String::new();
        for id in 0..12u64 {
            let k = 2 + (id % 4);
            let alg = ["n", "sn", "sr", "bsr", "bsrbk"][(id % 5) as usize];
            input.push_str(&format!("{{\"id\": {id}, \"k\": {k}, \"algorithm\": \"{alg}\"}}\n"));
        }
        let lines = run_lines(&detector, 4, &input);
        for id in 0..12u64 {
            let k = 2 + (id % 4);
            let alg = [
                AlgorithmKind::Naive,
                AlgorithmKind::SampledNaive,
                AlgorithmKind::SampleReverse,
                AlgorithmKind::BoundedSampleReverse,
                AlgorithmKind::BottomK,
            ][(id % 5) as usize];
            let expected = reference.detect(&DetectRequest::new(k as usize, alg)).unwrap();
            let got = by_id(&lines, id);
            assert_eq!(got.get("ok").and_then(Json::as_bool), Some(true), "{got}");
            let top: Vec<(u64, f64)> = got
                .get("top_k")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|e| {
                    (
                        e.get("node").and_then(Json::as_u64).unwrap(),
                        e.get("score").and_then(Json::as_f64).unwrap(),
                    )
                })
                .collect();
            let want: Vec<(u64, f64)> =
                expected.top_k.iter().map(|s| (s.node.0 as u64, s.score)).collect();
            assert_eq!(top, want, "service answer diverged for id {id}");
        }
    }

    #[test]
    fn batch_requests_share_the_session() {
        let detector = service();
        let lines = run_lines(
            &detector,
            2,
            "{\"id\": 1, \"cmd\": \"batch\", \"requests\": [{\"k\": 3, \"algorithm\": \"sn\"}, {\"k\": 6, \"algorithm\": \"sn\"}]}\n",
        );
        let responses = by_id(&lines, 1).get("responses").and_then(Json::as_array).unwrap();
        assert_eq!(responses.len(), 2);
        // Budget-ordered batching: the k=3 request's stream is a prefix
        // of the k=6 request's, so the pair draws max(t) not sum(t).
        let drawn: u64 = responses
            .iter()
            .map(|r| r.get("engine").and_then(|e| e.get("samples_drawn")).and_then(Json::as_u64))
            .map(Option::unwrap)
            .sum();
        let budgets: Vec<u64> = responses
            .iter()
            .map(|r| r.get("stats").and_then(|s| s.get("sample_budget")).and_then(Json::as_u64))
            .map(Option::unwrap)
            .collect();
        assert_eq!(drawn, *budgets.iter().max().unwrap());
    }

    #[test]
    fn clear_command_cold_starts_future_queries() {
        let detector = service();
        let lines = run_lines(&detector, 1, "{\"id\": 1, \"k\": 4, \"algorithm\": \"sn\"}\n");
        let first_drawn = by_id(&lines, 1)
            .get("engine")
            .and_then(|e| e.get("samples_drawn"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(first_drawn > 0);
        // Same query warm: nothing drawn. After clear: everything drawn.
        let lines = run_lines(
            &detector,
            1,
            concat!(
                "{\"id\": 1, \"k\": 4, \"algorithm\": \"sn\"}\n",
                "{\"id\": 2, \"cmd\": \"clear\"}\n",
                "{\"id\": 3, \"k\": 4, \"algorithm\": \"sn\"}\n",
            ),
        );
        let drawn = |id| {
            by_id(&lines, id)
                .get("engine")
                .and_then(|e| e.get("samples_drawn"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert_eq!(drawn(1), 0, "warm query must reuse the cache");
        assert_eq!(by_id(&lines, 2).get("cleared").and_then(Json::as_bool), Some(true));
        assert_eq!(drawn(3), first_drawn, "post-clear query must redraw from cold");
    }

    #[test]
    fn hostile_epsilon_is_bounded_by_the_session_sample_cap() {
        // A serve-mode session caps budgets (the CLI wires
        // DEFAULT_SERVE_MAX_SAMPLES into the config); a client-chosen
        // tiny epsilon must answer promptly at the cap instead of
        // pinning a worker on an astronomically large sampling job.
        let graph = Dataset::Interbank.generate_scaled(3, 1.0);
        let detector =
            Detector::builder(graph).seed(7).threads(1).max_samples(2_000).build().unwrap();
        let lines = run_lines(
            &detector,
            1,
            "{\"id\": 1, \"k\": 2, \"algorithm\": \"sn\", \"epsilon\": 0.000001}\n",
        );
        let r = by_id(&lines, 1);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        let budget =
            r.get("stats").and_then(|s| s.get("sample_budget")).and_then(Json::as_u64).unwrap();
        assert_eq!(budget, 2_000, "budget must truncate at the session cap");
    }

    #[test]
    fn oversized_and_hostile_lines_get_error_responses_not_crashes() {
        let detector = service();
        // One oversized line (no newline until past the cap), one
        // deeply-nested hostile line, then a normal request: the
        // connection survives all three.
        let mut input = Vec::new();
        input.extend(std::iter::repeat_n(b'x', MAX_REQUEST_BYTES + 100));
        input.push(b'\n');
        input.extend("[".repeat(200_000).into_bytes());
        input.push(b'\n');
        input.extend(b"{\"id\": 9, \"k\": 2, \"algorithm\": \"sn\"}\n");
        let mut output = Vec::new();
        let summary =
            serve(&detector, 2, std::io::Cursor::new(input), &mut output).expect("serve runs");
        assert_eq!(summary.requests, 3);
        let lines: Vec<Json> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).expect("valid response JSON"))
            .collect();
        let oversized = lines
            .iter()
            .find(|l| l.get("error").and_then(Json::as_str).is_some_and(|e| e.contains("exceeds")))
            .expect("oversized line answered with an error");
        assert_eq!(oversized.get("ok").and_then(Json::as_bool), Some(false));
        let hostile = lines
            .iter()
            .find(|l| l.get("error").and_then(Json::as_str).is_some_and(|e| e.contains("nesting")))
            .expect("hostile nesting answered with an error");
        assert_eq!(hostile.get("ok").and_then(Json::as_bool), Some(false));
        let good = by_id(&lines, 9);
        assert_eq!(good.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(good.get("top_k").and_then(Json::as_array).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn per_request_overrides_parse() {
        let detector = service();
        let lines = run_lines(
            &detector,
            1,
            concat!(
                "{\"id\": 1, \"k\": 3, \"algorithm\": \"sr\", \"epsilon\": 0.5, \"delta\": 0.2, \"seed\": 11, \"candidates\": [0, 1, 2, 3, 4, 5, 6, 7]}\n",
                "{\"id\": 2, \"k\": 3, \"algorithm\": \"sr\", \"epsilon\": 0.1, \"delta\": 0.2, \"seed\": 11, \"candidates\": [0, 1, 2, 3, 4, 5, 6, 7]}\n",
            ),
        );
        let budget = |id| {
            by_id(&lines, id)
                .get("stats")
                .and_then(|s| s.get("sample_budget"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert!(budget(2) > budget(1), "tighter epsilon must cost a bigger budget");
        let candidates = by_id(&lines, 1)
            .get("stats")
            .and_then(|s| s.get("candidates"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(candidates <= 8);
    }

    #[test]
    fn sample_cap_requests_answer_degraded_and_replay() {
        let detector = service();
        let lines = run_lines(
            &detector,
            1,
            concat!(
                "{\"id\": 1, \"k\": 3, \"algorithm\": \"sn\"}\n",
                "{\"id\": 2, \"cmd\": \"clear\"}\n",
                "{\"id\": 3, \"k\": 3, \"algorithm\": \"sn\", \"sample_cap\": 64}\n",
                "{\"id\": 4, \"cmd\": \"clear\"}\n",
                "{\"id\": 5, \"k\": 3, \"algorithm\": \"sn\", \"sample_cap\": 64}\n",
                "{\"id\": 6, \"k\": 3, \"algorithm\": \"sn\", \"sample_cap\": 0}\n",
            ),
        );
        let full = by_id(&lines, 1);
        assert_eq!(full.get("degraded").and_then(Json::as_bool), Some(false));
        let capped = by_id(&lines, 3);
        assert_eq!(capped.get("ok").and_then(Json::as_bool), Some(true), "{capped}");
        assert_eq!(capped.get("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(
            capped.get("stats").and_then(|s| s.get("samples_used")).and_then(Json::as_u64),
            Some(64)
        );
        let widened = capped.get("achieved_epsilon").and_then(Json::as_f64).unwrap();
        assert!(widened.is_finite() && widened > 0.0);
        // Same cap from cold replays the identical degraded answer.
        assert_eq!(by_id(&lines, 5).get("top_k"), capped.get("top_k"), "degraded replay differs");
        // A zero cap is a usage error, not a hung or empty answer.
        assert_eq!(by_id(&lines, 6).get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn timeout_zero_cancels_cold_queries_cleanly() {
        let detector = service();
        let (_, lines) = run_lines_with(
            &detector,
            &ServeOptions::default(),
            "{\"id\": 1, \"k\": 3, \"algorithm\": \"sn\", \"timeout_ms\": 0}\n",
        );
        let r = by_id(&lines, 1);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "{r}");
        assert!(
            r.get("error").and_then(Json::as_str).is_some_and(|e| e.contains("cancelled")),
            "{r}"
        );
        assert_eq!(detector.session_stats().queries_cancelled, 1);
        // The session is not poisoned.
        let (_, lines) = run_lines_with(
            &detector,
            &ServeOptions::default(),
            "{\"id\": 2, \"k\": 3, \"algorithm\": \"sn\"}\n",
        );
        assert_eq!(by_id(&lines, 2).get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn server_default_timeout_caps_the_clients() {
        let detector = service();
        // An expired server default applies to requests without their
        // own timeout AND caps a client's generous one.
        let options = ServeOptions { default_timeout_ms: Some(0), ..ServeOptions::default() };
        let (_, lines) = run_lines_with(
            &detector,
            &options,
            concat!(
                "{\"id\": 1, \"k\": 3, \"algorithm\": \"sn\"}\n",
                "{\"id\": 2, \"k\": 3, \"algorithm\": \"sn\", \"timeout_ms\": 99999999}\n",
            ),
        );
        for id in [1, 2] {
            let r = by_id(&lines, id);
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "{r}");
        }
        assert_eq!(detector.session_stats().queries_cancelled, 2);
    }

    #[test]
    fn shutdown_acks_stops_intake_and_reports() {
        let detector = service();
        let (summary, lines) = run_lines_with(
            &detector,
            &ServeOptions::default(),
            concat!(
                "{\"id\": 1, \"k\": 3, \"algorithm\": \"sn\"}\n",
                "{\"id\": 2, \"cmd\": \"shutdown\"}\n",
                "{\"id\": 3, \"k\": 3, \"algorithm\": \"sn\"}\n", // after shutdown: unread
            ),
        );
        assert!(summary.shutdown);
        assert_eq!(summary.requests, 2, "intake must stop at the shutdown line");
        assert_eq!(by_id(&lines, 1).get("ok").and_then(Json::as_bool), Some(true));
        let ack = by_id(&lines, 2);
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(ack.get("draining").and_then(Json::as_bool), Some(true));
        assert!(lines.iter().all(|l| l.get("id").and_then(Json::as_u64) != Some(3)));
    }

    #[test]
    fn flood_past_the_queue_sheds_with_structured_refusals() {
        let detector = service();
        // One worker, a queue of one, and two slow head-of-line queries
        // (tight ε on a cold cache): the burst behind them cannot all
        // fit, so at least one refusal is guaranteed; every refusal is
        // the structured overloaded shape and the summary tallies them.
        let mut input = String::new();
        for id in 0..2u64 {
            input.push_str(&format!(
                "{{\"id\": {id}, \"k\": 3, \"algorithm\": \"sn\", \"epsilon\": 0.03, \"seed\": {id}}}\n"
            ));
        }
        for id in 2..40u64 {
            input.push_str(&format!("{{\"id\": {id}, \"cmd\": \"stats\"}}\n"));
        }
        let options = ServeOptions { workers: 1, queue_depth: 1, ..ServeOptions::default() };
        let (summary, lines) = run_lines_with(&detector, &options, &input);
        assert_eq!(summary.requests, 40);
        let refusals: Vec<&Json> = lines
            .iter()
            .filter(|l| l.get("error").and_then(Json::as_str) == Some("overloaded"))
            .collect();
        assert!(!refusals.is_empty(), "flood past a full queue must shed");
        assert_eq!(summary.shed as usize, refusals.len());
        for refusal in refusals {
            assert_eq!(refusal.get("ok").and_then(Json::as_bool), Some(false));
            assert_eq!(
                refusal.get("retry_after_ms").and_then(Json::as_u64),
                Some(RETRY_AFTER_MS),
                "{refusal}"
            );
        }
        assert_eq!(detector.session_stats().requests_shed, summary.shed);
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        let graph = Dataset::Interbank.generate_scaled(3, 1.0);
        let detector = Arc::new(Detector::builder(graph).seed(7).threads(1).build().unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = Arc::clone(&detector);
        // Detached acceptor: lives until the test process exits.
        std::thread::spawn(move || {
            let options = ServeOptions { workers: 2, ..ServeOptions::default() };
            let _ = serve_tcp(&server, listener, &options, None);
        });

        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"{\"id\": 1, \"k\": 3, \"algorithm\": \"bsrbk\"}\n{\"id\": 2, \"cmd\": \"stats\"}\n")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut lines = Vec::new();
        for line in BufReader::new(stream).lines() {
            lines.push(Json::parse(&line.unwrap()).unwrap());
        }
        assert_eq!(lines.len(), 2);
        let detect = by_id(&lines, 1);
        assert_eq!(detect.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(detect.get("top_k").and_then(Json::as_array).map(<[Json]>::len), Some(3));
        // The TCP answer matches a direct call on the shared session's twin.
        let direct = detector.detect(&DetectRequest::new(3, AlgorithmKind::BottomK)).unwrap();
        let first = detect.get("top_k").unwrap().as_array().unwrap()[0]
            .get("node")
            .and_then(Json::as_u64)
            .unwrap();
        assert_eq!(first, direct.top_k[0].node.0 as u64);
    }

    #[test]
    fn tcp_shutdown_refuses_and_exits_cleanly() {
        use std::io::{BufRead, BufReader, Write};
        let graph = Dataset::Interbank.generate_scaled(3, 1.0);
        let detector = Detector::builder(graph).seed(7).threads(1).build().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn({
            let detector = Arc::new(detector);
            move || {
                let options = ServeOptions {
                    workers: 1,
                    max_connections: 1,
                    drain_ms: 500,
                    ..ServeOptions::default()
                };
                serve_tcp(&detector, listener, &options, None)
            }
        });
        // First client occupies the single slot (acceptor claims the
        // slot before accepting the next stream, so this is ordered).
        let first = std::net::TcpStream::connect(addr).unwrap();
        // Second client is refused with the structured overloaded line.
        let refused = std::net::TcpStream::connect(addr).unwrap();
        let mut line = String::new();
        BufReader::new(refused).read_line(&mut line).unwrap();
        let refusal = Json::parse(line.trim()).unwrap();
        assert_eq!(refusal.get("error").and_then(Json::as_str), Some("overloaded"), "{refusal}");
        assert_eq!(refusal.get("retry_after_ms").and_then(Json::as_u64), Some(RETRY_AFTER_MS));
        // The surviving client asks the whole server to shut down; the
        // acceptor wakes, drains, and serve_tcp returns.
        let mut first = first;
        first.write_all(b"{\"id\": 1, \"cmd\": \"shutdown\"}\n").unwrap();
        let mut ack = String::new();
        BufReader::new(first.try_clone().unwrap()).read_line(&mut ack).unwrap();
        let ack = Json::parse(ack.trim()).unwrap();
        assert_eq!(ack.get("draining").and_then(Json::as_bool), Some(true), "{ack}");
        server.join().unwrap().expect("serve_tcp exits cleanly after shutdown");
    }

    /// Fresh WAL in a per-process temp path; returns the path too so
    /// tests can rescan it after the serve loop drops the log.
    fn temp_wal(name: &str) -> (UpdateLog, std::path::PathBuf) {
        let path =
            std::env::temp_dir().join(format!("vulnds-serve-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let wal = Wal::create(&path, 0, crate::wal::FsyncPolicy::Never).expect("create wal");
        (UpdateLog::new(wal, None), path)
    }

    #[test]
    fn update_applies_delta_and_reports_epoch_and_revalidation() {
        let detector = service();
        let lines = run_lines(
            &detector,
            1, // one worker: updates and queries stay in request order
            concat!(
                "{\"id\": 1, \"cmd\": \"detect\", \"k\": 4, \"algorithm\": \"sr\"}\n",
                "{\"id\": 2, \"cmd\": \"update\", \"self_risk\": [[3, 0.6]], \"edge_prob\": [[5, 0.42]]}\n",
                "{\"id\": 3, \"cmd\": \"detect\", \"k\": 4, \"algorithm\": \"sr\"}\n",
                "{\"id\": 4, \"cmd\": \"stats\"}\n",
            ),
        );
        let update = by_id(&lines, 2);
        assert_eq!(update.get("ok").and_then(Json::as_bool), Some(true), "{update}");
        assert_eq!(update.get("epoch").and_then(Json::as_u64), Some(1));
        assert_eq!(update.get("durable").and_then(Json::as_bool), Some(false));
        assert!(update.get("graph_version").and_then(Json::as_u64).unwrap() > 0);
        assert!(update.get("revalidated").is_some() && update.get("invalidated").is_some());

        // The post-update answer is bit-identical to a fresh session on
        // the mutated graph: epoch swap plus revalidation never change
        // what a query computes, only how much survives warm.
        let mut mutated = Dataset::Interbank.generate_scaled(3, 1.0);
        GraphDelta::default()
            .set_self_risk(NodeId(3), 0.6)
            .set_edge_prob(EdgeId(5), 0.42)
            .apply(&mut mutated)
            .expect("delta applies");
        let reference = Detector::builder(mutated).seed(7).threads(1).build().unwrap();
        let want = reference
            .detect(&vulnds_core::DetectRequest::new(4, AlgorithmKind::SampleReverse))
            .unwrap();
        let got = by_id(&lines, 3);
        let got_top: Vec<(u64, String)> = got
            .get("top_k")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|e| {
                (e.get("node").and_then(Json::as_u64).unwrap(), e.get("score").unwrap().to_string())
            })
            .collect();
        let want_top: Vec<(u64, String)> = want
            .top_k
            .iter()
            .map(|s| (u64::from(s.node.0), Json::from(s.score).to_string()))
            .collect();
        assert_eq!(got_top, want_top);
        assert_eq!(
            got.get("engine").and_then(|e| e.get("epoch")).and_then(Json::as_u64),
            Some(1),
            "{got}"
        );

        let session = by_id(&lines, 4).get("session").cloned().unwrap();
        assert_eq!(session.get("epoch").and_then(Json::as_u64), Some(1));
        assert_eq!(session.get("deltas_applied").and_then(Json::as_u64), Some(1));
        assert!(session.get("caches_revalidated").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn durable_update_is_on_disk_before_the_ack() {
        let detector = service();
        let (updates, path) = temp_wal("durable-ack");
        let mut output = Vec::new();
        let input = concat!(
            "{\"id\": 1, \"cmd\": \"update\", \"edges\": [[0, 1, 0.8]]}\n",
            "{\"id\": 2, \"cmd\": \"update\", \"self_risk\": [[9, 0.3], [4, 0.5]]}\n",
            "{\"id\": 3, \"cmd\": \"stats\"}\n",
        );
        let options = ServeOptions { workers: 1, ..ServeOptions::default() };
        serve_durable(&detector, &options, Some(&updates), input.as_bytes(), &mut output)
            .expect("serve runs");
        let lines: Vec<Json> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).expect("valid response JSON"))
            .collect();
        for id in [1, 2] {
            let ack = by_id(&lines, id);
            assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true), "{ack}");
            assert_eq!(ack.get("durable").and_then(Json::as_bool), Some(true));
            assert_eq!(ack.get("epoch").and_then(Json::as_u64), Some(id));
        }
        let stats = by_id(&lines, 3);
        assert_eq!(stats.get("wal_records").and_then(Json::as_u64), Some(2));

        // Every acked epoch is a committed record; replaying the log
        // over a fresh copy of the base graph reproduces the live
        // graph bit for bit.
        let scan = crate::wal::scan(&path).expect("scan recovers");
        assert!(scan.torn.is_none());
        assert_eq!(scan.records.iter().map(|r| r.epoch).collect::<Vec<_>>(), vec![1, 2]);
        let mut replayed = Dataset::Interbank.generate_scaled(3, 1.0);
        for record in &scan.records {
            record.delta.apply(&mut replayed).expect("replay applies");
        }
        let live = detector.graph();
        assert_eq!(replayed.num_nodes(), live.num_nodes());
        for v in 0..replayed.num_nodes() {
            assert_eq!(
                replayed.self_risk(NodeId(v as u32)).to_bits(),
                live.self_risk(NodeId(v as u32)).to_bits()
            );
        }
        for e in 0..replayed.num_edges() {
            assert_eq!(
                replayed.edge_prob(EdgeId(e as u32)).to_bits(),
                live.edge_prob(EdgeId(e as u32)).to_bits()
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn invalid_updates_are_rejected_without_advancing_the_epoch() {
        let detector = service();
        let lines = run_lines(
            &detector,
            1,
            concat!(
                "{\"id\": 1, \"cmd\": \"update\"}\n", // empty delta
                "{\"id\": 2, \"cmd\": \"update\", \"self_risk\": [[99999, 0.5]]}\n",
                "{\"id\": 3, \"cmd\": \"update\", \"edges\": [[0, 0, 0.5]]}\n", // no such edge
                "{\"id\": 4, \"cmd\": \"update\", \"self_risk\": [[1, 1.5]]}\n", // bad prob
                "{\"id\": 5, \"cmd\": \"stats\"}\n",
            ),
        );
        for id in [1, 2, 3, 4] {
            let resp = by_id(&lines, id);
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false), "{resp}");
            assert!(resp.get("error").is_some());
        }
        let session = by_id(&lines, 5).get("session").cloned().unwrap();
        assert_eq!(session.get("epoch").and_then(Json::as_u64), Some(0));
        assert_eq!(session.get("deltas_applied").and_then(Json::as_u64), Some(0));
    }
}
