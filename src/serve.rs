//! The `vulnds serve` front end: a zero-dependency query service over
//! one shared [`Detector`] session.
//!
//! Requests are newline-delimited JSON objects, answered by a pool of
//! worker threads that all query the **same** session through `&self` —
//! the 0.4 concurrency contract ([`Detector`] is `Send + Sync`, answers
//! are bit-identical to serial execution) is what makes this front end
//! a thin loop: no per-client session, no request serialization, and
//! every client compounds the same bounds/reduction/sampled-world
//! caches.
//!
//! ```text
//! # request (one per line; `id` is echoed back, any JSON value)
//! {"id": 1, "cmd": "detect", "k": 5, "algorithm": "bsrbk", "epsilon": 0.2, "seed": 7}
//! {"id": 2, "cmd": "batch", "requests": [{"k": 5, "algorithm": "sn"}, {"k": 9, "algorithm": "sn"}]}
//! {"id": 3, "cmd": "stats"}
//! {"id": 4, "cmd": "clear"}
//!
//! # response (one per line; order may differ from request order — match by id)
//! {"id": 1, "ok": true, "top_k": [{"node": 17, "score": 0.31}, …], "stats": {…}, "engine": {…}}
//! {"id": 3, "ok": true, "session": {"queries": 2, "samples_drawn": 18000, …}}
//! {"id": 9, "ok": false, "error": "detect: \"k\" (positive integer) is required"}
//! ```
//!
//! `cmd` defaults to `"detect"` when a `k` field is present. Responses
//! stream back as they complete, so a slow query never blocks a fast
//! one; clients that need pairing must send an `id`.
//!
//! The same loop serves stdin (the default) or a TCP listener
//! (`--tcp addr`, one connection handler per client, all sharing the
//! one session). The JSON response encoders are shared with the CLI's
//! `--format json` mode, so scripted `vulnds detect` output and service
//! responses stay field-compatible.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use ugraph::NodeId;
use vulnds_core::engine::{DetectRequest, DetectResponse, Detector};
use vulnds_core::{EngineStats, RunStats, SessionStats, VulnError};

use crate::cli::parse_algorithm;
use crate::json::Json;

/// What one [`serve`] loop did, reported when its input ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Non-empty request lines answered (including error responses).
    pub requests: u64,
}

/// Longest request line the service buffers (1 MiB). A client that
/// streams more without a newline gets an error response for that line
/// and the excess is discarded unbuffered, so one connection can never
/// grow the server's memory without bound.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Depth of the task and response queues between the reader, the
/// worker pool, and the writer. Bounded so a client that floods
/// requests or never reads its responses back-pressures the reader
/// (blocked `send`) instead of growing server memory: at most
/// `2 · QUEUE_DEPTH` lines are ever in flight per connection.
pub const QUEUE_DEPTH: usize = 256;

/// Default hard cap on any one query's sample budget in serve mode
/// (`VulnConfig::max_samples`; override with `--max-samples`). Clients
/// choose `ε`/`δ` per request, and an `ε` of `1e-9` is a valid value
/// whose Equation-3 budget would pin a worker for years — the cap
/// turns that into a bounded (if cap-truncated) answer instead of a
/// denial of service. 5M worlds ≈ tight-contract territory for the
/// graph sizes a single node serves.
pub const DEFAULT_SERVE_MAX_SAMPLES: u64 = 5_000_000;

/// Reads one `\n`-terminated line into `buf` (cleared first), buffering
/// at most [`MAX_REQUEST_BYTES`]. Returns `Ok(None)` at end-of-file,
/// `Ok(Some(oversized))` otherwise; an oversized line's excess bytes
/// are consumed and dropped without being stored.
fn read_request_line(input: &mut impl BufRead, buf: &mut Vec<u8>) -> std::io::Result<Option<bool>> {
    buf.clear();
    // +2: room for a CRLF terminator on a content line of exactly
    // MAX_REQUEST_BYTES, so the LF- and CRLF-framed forms of the same
    // at-limit request are judged identically.
    let read = input.by_ref().take(MAX_REQUEST_BYTES as u64 + 2).read_until(b'\n', buf)?;
    if read == 0 {
        return Ok(None);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    }
    if buf.len() <= MAX_REQUEST_BYTES {
        return Ok(Some(false));
    }
    // Oversized: drain the rest of the line without buffering it.
    buf.clear();
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return Ok(Some(true));
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => {
                input.consume(i + 1);
                return Ok(Some(true));
            }
            None => {
                let len = chunk.len();
                input.consume(len);
            }
        }
    }
}

/// Answers newline-delimited JSON requests from `input` on `workers`
/// pool threads sharing `detector`, writing one JSON response line per
/// request to `output` as each completes. Returns when `input` reaches
/// end-of-file and every in-flight response has been written.
pub fn serve(
    detector: &Detector,
    workers: usize,
    input: impl BufRead,
    output: impl Write + Send,
) -> Result<ServeSummary, VulnError> {
    let workers = workers.max(1);
    let requests = AtomicU64::new(0);
    let io_result: std::io::Result<()> = std::thread::scope(|s| {
        let (task_tx, task_rx) = mpsc::sync_channel::<String>(QUEUE_DEPTH);
        let task_rx = Arc::new(Mutex::new(task_rx));
        let (response_tx, response_rx) = mpsc::sync_channel::<String>(QUEUE_DEPTH);
        for _ in 0..workers {
            let task_rx = Arc::clone(&task_rx);
            let response_tx = response_tx.clone();
            let requests = &requests;
            s.spawn(move || loop {
                // Hold the receiver lock only to pop one line, not
                // while answering it.
                let line = match task_rx.lock() {
                    Ok(rx) => rx.recv(),
                    Err(_) => break,
                };
                let Ok(line) = line else { break };
                // ORDERING: Relaxed — a pure tally; the final read
                // happens after the scope joins every thread.
                requests.fetch_add(1, Ordering::Relaxed);
                let response = respond(detector, &line);
                if response_tx.send(response.to_string()).is_err() {
                    break;
                }
            });
        }
        let oversize_tx = response_tx.clone();
        drop(response_tx);
        let writer = s.spawn(move || -> std::io::Result<()> {
            let mut output = output;
            for line in response_rx {
                writeln!(output, "{line}")?;
                output.flush()?;
            }
            Ok(())
        });
        let mut input = input;
        let mut buf = Vec::new();
        while let Some(oversized) = read_request_line(&mut input, &mut buf)? {
            if oversized {
                // Answer in-line (the request is gone, there is nothing
                // to hand a worker) and keep serving the connection.
                // ORDERING: Relaxed — same pure tally as the workers'.
                requests.fetch_add(1, Ordering::Relaxed);
                let error = Json::obj([
                    ("id", Json::Null),
                    ("ok", Json::Bool(false)),
                    ("error", format!("request line exceeds {MAX_REQUEST_BYTES} bytes").into()),
                ]);
                if oversize_tx.send(error.to_string()).is_err() {
                    break;
                }
                continue;
            }
            let line = String::from_utf8_lossy(&buf);
            if line.trim().is_empty() {
                continue;
            }
            if task_tx.send(line.into_owned()).is_err() {
                break;
            }
        }
        drop(oversize_tx);
        drop(task_tx);
        writer.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
    });
    io_result.map_err(|e| VulnError::Usage(format!("serve: I/O error: {e}")))?;
    // ORDERING: Relaxed — the scope above joined every writer of this
    // counter, so this read races with nothing.
    Ok(ServeSummary { requests: requests.load(Ordering::Relaxed) })
}

/// Concurrent TCP connections the service accepts; further clients are
/// refused with a single JSON error line and disconnected, so hostile
/// connection floods cannot multiply worker pools without bound
/// (threads per connection = `workers` + 2).
pub const MAX_CONNECTIONS: usize = 64;

/// Accepts TCP connections forever, answering each client's
/// newline-delimited JSON requests with a **per-connection**
/// `workers`-thread pool over the one shared `detector`. Connections
/// are served concurrently (capped at [`MAX_CONNECTIONS`]) and all
/// compound the same session caches.
pub fn serve_tcp(
    detector: &Detector,
    listener: TcpListener,
    workers: usize,
) -> Result<(), VulnError> {
    /// Releases the connection slot on drop — including when the
    /// handler unwinds — so a panicking connection can never leak one
    /// of the [`MAX_CONNECTIONS`] slots permanently.
    struct SlotRelease<'a>(&'a AtomicU64);
    impl Drop for SlotRelease<'_> {
        fn drop(&mut self) {
            // ORDERING: AcqRel — pairs with the acceptor's RMWs so the
            // open-connection count is exact and the cap cannot be
            // overshot by a stale read.
            self.0.fetch_sub(1, Ordering::AcqRel);
        }
    }

    let open = AtomicU64::new(0);
    std::thread::scope(|s| {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            // ORDERING: AcqRel — reserve-then-release must be exact
            // RMWs against concurrent SlotRelease drops, or a refusal
            // storm could leak slots past the cap.
            if open.fetch_add(1, Ordering::AcqRel) >= MAX_CONNECTIONS as u64 {
                open.fetch_sub(1, Ordering::AcqRel);
                let refusal = Json::obj([
                    ("id", Json::Null),
                    ("ok", Json::Bool(false)),
                    ("error", format!("server at capacity ({MAX_CONNECTIONS} connections)").into()),
                ]);
                let _ = writeln!(stream, "{refusal}");
                continue;
            }
            let open = &open;
            s.spawn(move || {
                let _slot = SlotRelease(open);
                // Per-connection I/O errors drop the connection, not
                // the service.
                if let Ok(reader) = stream.try_clone() {
                    let _ = serve(detector, workers, BufReader::new(reader), stream);
                }
            });
        }
        Ok(())
    })
}

/// Answers one raw request line (already non-empty) as a response
/// object; parse and engine errors become `ok: false` responses rather
/// than killing the connection.
fn respond(detector: &Detector, line: &str) -> Json {
    let (id, outcome) = match Json::parse_salvaging_id(line) {
        // A syntax error still echoes any root-level id parsed before
        // the error, so clients can pair the failure with its request.
        (Err(e), salvaged) => (salvaged.unwrap_or(Json::Null), Err(e)),
        (Ok(request), _) => {
            let id = request.get("id").cloned().unwrap_or(Json::Null);
            (id, dispatch(detector, &request))
        }
    };
    let mut fields = vec![("id".to_string(), id)];
    match outcome {
        Ok(Json::Obj(payload)) => {
            fields.push(("ok".to_string(), Json::Bool(true)));
            fields.extend(payload);
        }
        Ok(other) => {
            fields.push(("ok".to_string(), Json::Bool(true)));
            fields.push(("result".to_string(), other));
        }
        Err(e) => {
            fields.push(("ok".to_string(), Json::Bool(false)));
            fields.push(("error".to_string(), Json::Str(e.to_string())));
        }
    }
    Json::Obj(fields)
}

/// Routes one parsed request to the engine.
fn dispatch(detector: &Detector, request: &Json) -> Result<Json, VulnError> {
    let cmd = match request.get("cmd").map(|c| (c, c.as_str())) {
        None if request.get("k").is_some() => "detect",
        None => "",
        Some((_, Some(s))) => s,
        Some((_, None)) => return Err(usage("\"cmd\" must be a string")),
    };
    match cmd {
        "detect" => {
            let response = detector.detect(&parse_detect(request)?)?;
            Ok(detect_response_json(&response))
        }
        "batch" => {
            let items = request
                .get("requests")
                .and_then(Json::as_array)
                .ok_or_else(|| usage("batch: \"requests\" (array) is required"))?;
            let parsed: Vec<DetectRequest> =
                items.iter().map(parse_detect).collect::<Result<_, _>>()?;
            let responses = detector.detect_many(&parsed)?;
            Ok(Json::obj([(
                "responses",
                Json::Arr(responses.iter().map(detect_response_json).collect()),
            )]))
        }
        "stats" => Ok(Json::obj([("session", session_stats_json(&detector.session_stats()))])),
        "clear" => {
            detector.clear_cache();
            Ok(Json::obj([("cleared", Json::Bool(true))]))
        }
        other => Err(usage(&format!("unknown cmd {other:?} (detect|batch|stats|clear)"))),
    }
}

fn usage(msg: &str) -> VulnError {
    VulnError::Usage(msg.to_string())
}

/// Extracts a [`DetectRequest`] from a request object (used both for
/// `detect` and for each element of `batch`'s `requests`).
fn parse_detect(request: &Json) -> Result<DetectRequest, VulnError> {
    let k = request
        .get("k")
        .and_then(Json::as_u64)
        .filter(|&k| k > 0)
        .ok_or_else(|| usage("detect: \"k\" (positive integer) is required"))? as usize;
    let algorithm = match request.get("algorithm") {
        None => vulnds_core::AlgorithmKind::BottomK,
        Some(a) => parse_algorithm(
            a.as_str().ok_or_else(|| usage("detect: \"algorithm\" must be a string"))?,
        )?,
    };
    let mut parsed = DetectRequest::new(k, algorithm);
    if let Some(v) = request.get("epsilon") {
        parsed = parsed
            .with_epsilon(v.as_f64().ok_or_else(|| usage("detect: \"epsilon\" must be a number"))?);
    }
    if let Some(v) = request.get("delta") {
        parsed = parsed
            .with_delta(v.as_f64().ok_or_else(|| usage("detect: \"delta\" must be a number"))?);
    }
    if let Some(v) = request.get("seed") {
        parsed = parsed
            .with_seed(v.as_u64().ok_or_else(|| usage("detect: \"seed\" must be an integer"))?);
    }
    if let Some(v) = request.get("candidates") {
        let items = v.as_array().ok_or_else(|| usage("detect: \"candidates\" must be an array"))?;
        let mut candidates = Vec::with_capacity(items.len());
        for item in items {
            let id = item
                .as_u64()
                .filter(|&id| id <= u32::MAX as u64)
                .ok_or_else(|| usage("detect: candidate ids must be u32 integers"))?;
            candidates.push(NodeId(id as u32));
        }
        parsed = parsed.with_candidates(candidates);
    }
    Ok(parsed)
}

/// Encodes a detection answer — the shared shape of `serve` responses
/// and `vulnds detect --format json` output.
pub fn detect_response_json(response: &DetectResponse) -> Json {
    Json::obj([
        (
            "top_k",
            Json::Arr(
                response
                    .top_k
                    .iter()
                    .map(|s| {
                        Json::obj([
                            ("node", Json::from(s.node.0 as u64)),
                            ("score", s.score.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("stats", run_stats_json(&response.stats)),
        ("engine", engine_stats_json(&response.engine)),
    ])
}

/// Encodes the algorithm-level diagnostics of one answer.
pub fn run_stats_json(stats: &RunStats) -> Json {
    Json::obj([
        ("algorithm", stats.algorithm.label().into()),
        ("sample_budget", stats.sample_budget.into()),
        ("samples_used", stats.samples_used.into()),
        ("candidates", stats.candidates.into()),
        ("verified", stats.verified.into()),
        ("early_stopped", stats.early_stopped.into()),
        ("elapsed_ms", (stats.elapsed.as_secs_f64() * 1e3).into()),
    ])
}

/// Encodes the session-cache diagnostics of one answer.
pub fn engine_stats_json(engine: &EngineStats) -> Json {
    Json::obj([
        ("samples_drawn", engine.samples_drawn.into()),
        ("samples_reused", engine.samples_reused.into()),
        ("bounds_reused", engine.bounds_reused.into()),
        ("reduction_reused", engine.reduction_reused.into()),
        ("coin_words_synthesized", engine.coin_words_synthesized.into()),
        ("lazy_edge_words_skipped", engine.lazy_edge_words_skipped.into()),
        ("block_words", engine.block_words.into()),
        ("superblocks", engine.superblocks.into()),
        ("push_steps", engine.push_steps.into()),
        ("pull_steps", engine.pull_steps.into()),
        ("direction_switches", engine.direction_switches.into()),
        ("relabel_applied", engine.relabel_applied.into()),
    ])
}

/// Encodes cumulative session counters (the `stats` command, and the
/// session line of `--format json` CLI output).
pub fn session_stats_json(session: &SessionStats) -> Json {
    Json::obj([
        ("queries", session.queries.into()),
        ("samples_drawn", session.samples_drawn.into()),
        ("samples_reused", session.samples_reused.into()),
        ("bounds_computed", session.bounds_computed.into()),
        ("bounds_reused", session.bounds_reused.into()),
        ("reductions_computed", session.reductions_computed.into()),
        ("reductions_reused", session.reductions_reused.into()),
        ("coin_tables_built", session.coin_tables_built.into()),
        ("coin_words_synthesized", session.coin_words_synthesized.into()),
        ("lazy_edge_words_skipped", session.lazy_edge_words_skipped.into()),
        ("superblocks_evaluated", session.superblocks_evaluated.into()),
        ("widest_block_words", session.widest_block_words.into()),
        ("cache_waits", session.cache_waits.into()),
        ("builds_deduped", session.builds_deduped.into()),
        ("concurrent_peak", session.concurrent_peak.into()),
        ("push_steps", session.push_steps.into()),
        ("pull_steps", session.pull_steps.into()),
        ("direction_switches", session.direction_switches.into()),
        ("relabel_applied", session.relabel_applied.into()),
    ])
}

/// Encodes all-node scores (`vulnds score --format json`).
pub fn scores_json(method: &str, scores: &[f64]) -> Json {
    Json::obj([
        ("method", method.into()),
        ("scores", Json::Arr(scores.iter().map(|&s| Json::Num(s)).collect())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnds_core::AlgorithmKind;
    use vulnds_datasets::Dataset;

    fn service() -> Detector {
        let graph = Dataset::Interbank.generate_scaled(3, 1.0);
        Detector::builder(graph).seed(7).threads(1).build().unwrap()
    }

    /// Runs a full serve loop over in-memory I/O and returns the
    /// response lines parsed back to JSON.
    fn run_lines(detector: &Detector, workers: usize, input: &str) -> Vec<Json> {
        let mut output = Vec::new();
        let summary = serve(detector, workers, input.as_bytes(), &mut output).expect("serve runs");
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<Json> =
            text.lines().map(|l| Json::parse(l).expect("valid response JSON")).collect();
        assert_eq!(summary.requests as usize, lines.len());
        lines
    }

    fn by_id(lines: &[Json], id: u64) -> &Json {
        lines
            .iter()
            .find(|l| l.get("id").and_then(Json::as_u64) == Some(id))
            .unwrap_or_else(|| panic!("no response with id {id}"))
    }

    #[test]
    fn answers_detect_stats_and_errors() {
        let detector = service();
        let lines = run_lines(
            &detector,
            2,
            concat!(
                "{\"id\": 1, \"cmd\": \"detect\", \"k\": 5, \"algorithm\": \"bsrbk\"}\n",
                "\n", // blank lines are skipped, not errors
                "{\"id\": 2, \"k\": 3, \"algorithm\": \"sn\"}\n", // cmd defaults to detect
                "{\"id\": 3, \"cmd\": \"stats\"}\n",
                "{\"id\": 4, \"cmd\": \"warp\"}\n",
                "{\"id\": 5, \"cmd\": \"detect\"}\n", // missing k
                "not json at all\n",
            ),
        );
        assert_eq!(lines.len(), 6);

        let detect = by_id(&lines, 1);
        assert_eq!(detect.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(detect.get("top_k").and_then(Json::as_array).map(<[Json]>::len), Some(5));
        assert_eq!(
            detect.get("stats").and_then(|s| s.get("algorithm")).and_then(Json::as_str),
            Some("BSRBK")
        );
        assert!(detect.get("engine").and_then(|e| e.get("samples_drawn")).is_some());

        assert_eq!(by_id(&lines, 2).get("ok").and_then(Json::as_bool), Some(true));

        let stats = by_id(&lines, 3);
        // Workers race with the stats request; the counter is whatever
        // it was at that moment, but the field must exist and be sane.
        let queries =
            stats.get("session").and_then(|s| s.get("queries")).and_then(Json::as_u64).unwrap();
        assert!(queries <= 3);

        for id in [4, 5] {
            let err = by_id(&lines, id);
            assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false), "{err}");
            assert!(err.get("error").is_some());
        }
        // The unparseable line still gets a response, with a null id.
        let bad = lines
            .iter()
            .find(|l| l.get("id") == Some(&Json::Null))
            .expect("malformed line answered");
        assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn syntax_errors_echo_the_id_parsed_before_the_error() {
        let detector = service();
        let lines = run_lines(
            &detector,
            1,
            concat!(
                "{\"id\": 77, \"cmd\": \"detect\", \"k\": }\n", // id seen, then broken
                "{\"k\": , \"id\": 78}\n",                      // broken before the id
            ),
        );
        let with_id = by_id(&lines, 77);
        assert_eq!(with_id.get("ok").and_then(Json::as_bool), Some(false));
        assert!(with_id.get("error").is_some());
        let without = lines.iter().find(|l| l.get("id") == Some(&Json::Null)).unwrap();
        assert_eq!(without.get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn concurrent_service_answers_match_direct_calls() {
        let detector = service();
        let reference = service();
        let mut input = String::new();
        for id in 0..12u64 {
            let k = 2 + (id % 4);
            let alg = ["n", "sn", "sr", "bsr", "bsrbk"][(id % 5) as usize];
            input.push_str(&format!("{{\"id\": {id}, \"k\": {k}, \"algorithm\": \"{alg}\"}}\n"));
        }
        let lines = run_lines(&detector, 4, &input);
        for id in 0..12u64 {
            let k = 2 + (id % 4);
            let alg = [
                AlgorithmKind::Naive,
                AlgorithmKind::SampledNaive,
                AlgorithmKind::SampleReverse,
                AlgorithmKind::BoundedSampleReverse,
                AlgorithmKind::BottomK,
            ][(id % 5) as usize];
            let expected = reference.detect(&DetectRequest::new(k as usize, alg)).unwrap();
            let got = by_id(&lines, id);
            assert_eq!(got.get("ok").and_then(Json::as_bool), Some(true), "{got}");
            let top: Vec<(u64, f64)> = got
                .get("top_k")
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|e| {
                    (
                        e.get("node").and_then(Json::as_u64).unwrap(),
                        e.get("score").and_then(Json::as_f64).unwrap(),
                    )
                })
                .collect();
            let want: Vec<(u64, f64)> =
                expected.top_k.iter().map(|s| (s.node.0 as u64, s.score)).collect();
            assert_eq!(top, want, "service answer diverged for id {id}");
        }
    }

    #[test]
    fn batch_requests_share_the_session() {
        let detector = service();
        let lines = run_lines(
            &detector,
            2,
            "{\"id\": 1, \"cmd\": \"batch\", \"requests\": [{\"k\": 3, \"algorithm\": \"sn\"}, {\"k\": 6, \"algorithm\": \"sn\"}]}\n",
        );
        let responses = by_id(&lines, 1).get("responses").and_then(Json::as_array).unwrap();
        assert_eq!(responses.len(), 2);
        // Budget-ordered batching: the k=3 request's stream is a prefix
        // of the k=6 request's, so the pair draws max(t) not sum(t).
        let drawn: u64 = responses
            .iter()
            .map(|r| r.get("engine").and_then(|e| e.get("samples_drawn")).and_then(Json::as_u64))
            .map(Option::unwrap)
            .sum();
        let budgets: Vec<u64> = responses
            .iter()
            .map(|r| r.get("stats").and_then(|s| s.get("sample_budget")).and_then(Json::as_u64))
            .map(Option::unwrap)
            .collect();
        assert_eq!(drawn, *budgets.iter().max().unwrap());
    }

    #[test]
    fn clear_command_cold_starts_future_queries() {
        let detector = service();
        let lines = run_lines(&detector, 1, "{\"id\": 1, \"k\": 4, \"algorithm\": \"sn\"}\n");
        let first_drawn = by_id(&lines, 1)
            .get("engine")
            .and_then(|e| e.get("samples_drawn"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(first_drawn > 0);
        // Same query warm: nothing drawn. After clear: everything drawn.
        let lines = run_lines(
            &detector,
            1,
            concat!(
                "{\"id\": 1, \"k\": 4, \"algorithm\": \"sn\"}\n",
                "{\"id\": 2, \"cmd\": \"clear\"}\n",
                "{\"id\": 3, \"k\": 4, \"algorithm\": \"sn\"}\n",
            ),
        );
        let drawn = |id| {
            by_id(&lines, id)
                .get("engine")
                .and_then(|e| e.get("samples_drawn"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert_eq!(drawn(1), 0, "warm query must reuse the cache");
        assert_eq!(by_id(&lines, 2).get("cleared").and_then(Json::as_bool), Some(true));
        assert_eq!(drawn(3), first_drawn, "post-clear query must redraw from cold");
    }

    #[test]
    fn hostile_epsilon_is_bounded_by_the_session_sample_cap() {
        // A serve-mode session caps budgets (the CLI wires
        // DEFAULT_SERVE_MAX_SAMPLES into the config); a client-chosen
        // tiny epsilon must answer promptly at the cap instead of
        // pinning a worker on an astronomically large sampling job.
        let graph = Dataset::Interbank.generate_scaled(3, 1.0);
        let detector =
            Detector::builder(graph).seed(7).threads(1).max_samples(2_000).build().unwrap();
        let lines = run_lines(
            &detector,
            1,
            "{\"id\": 1, \"k\": 2, \"algorithm\": \"sn\", \"epsilon\": 0.000001}\n",
        );
        let r = by_id(&lines, 1);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r}");
        let budget =
            r.get("stats").and_then(|s| s.get("sample_budget")).and_then(Json::as_u64).unwrap();
        assert_eq!(budget, 2_000, "budget must truncate at the session cap");
    }

    #[test]
    fn oversized_and_hostile_lines_get_error_responses_not_crashes() {
        let detector = service();
        // One oversized line (no newline until past the cap), one
        // deeply-nested hostile line, then a normal request: the
        // connection survives all three.
        let mut input = Vec::new();
        input.extend(std::iter::repeat_n(b'x', MAX_REQUEST_BYTES + 100));
        input.push(b'\n');
        input.extend("[".repeat(200_000).into_bytes());
        input.push(b'\n');
        input.extend(b"{\"id\": 9, \"k\": 2, \"algorithm\": \"sn\"}\n");
        let mut output = Vec::new();
        let summary =
            serve(&detector, 2, std::io::Cursor::new(input), &mut output).expect("serve runs");
        assert_eq!(summary.requests, 3);
        let lines: Vec<Json> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).expect("valid response JSON"))
            .collect();
        let oversized = lines
            .iter()
            .find(|l| l.get("error").and_then(Json::as_str).is_some_and(|e| e.contains("exceeds")))
            .expect("oversized line answered with an error");
        assert_eq!(oversized.get("ok").and_then(Json::as_bool), Some(false));
        let hostile = lines
            .iter()
            .find(|l| l.get("error").and_then(Json::as_str).is_some_and(|e| e.contains("nesting")))
            .expect("hostile nesting answered with an error");
        assert_eq!(hostile.get("ok").and_then(Json::as_bool), Some(false));
        let good = by_id(&lines, 9);
        assert_eq!(good.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(good.get("top_k").and_then(Json::as_array).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn per_request_overrides_parse() {
        let detector = service();
        let lines = run_lines(
            &detector,
            1,
            concat!(
                "{\"id\": 1, \"k\": 3, \"algorithm\": \"sr\", \"epsilon\": 0.5, \"delta\": 0.2, \"seed\": 11, \"candidates\": [0, 1, 2, 3, 4, 5, 6, 7]}\n",
                "{\"id\": 2, \"k\": 3, \"algorithm\": \"sr\", \"epsilon\": 0.1, \"delta\": 0.2, \"seed\": 11, \"candidates\": [0, 1, 2, 3, 4, 5, 6, 7]}\n",
            ),
        );
        let budget = |id| {
            by_id(&lines, id)
                .get("stats")
                .and_then(|s| s.get("sample_budget"))
                .and_then(Json::as_u64)
                .unwrap()
        };
        assert!(budget(2) > budget(1), "tighter epsilon must cost a bigger budget");
        let candidates = by_id(&lines, 1)
            .get("stats")
            .and_then(|s| s.get("candidates"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(candidates <= 8);
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        let graph = Dataset::Interbank.generate_scaled(3, 1.0);
        let detector = Arc::new(Detector::builder(graph).seed(7).threads(1).build().unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = Arc::clone(&detector);
        // Detached acceptor: lives until the test process exits.
        std::thread::spawn(move || {
            let _ = serve_tcp(&server, listener, 2);
        });

        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"{\"id\": 1, \"k\": 3, \"algorithm\": \"bsrbk\"}\n{\"id\": 2, \"cmd\": \"stats\"}\n")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut lines = Vec::new();
        for line in BufReader::new(stream).lines() {
            lines.push(Json::parse(&line.unwrap()).unwrap());
        }
        assert_eq!(lines.len(), 2);
        let detect = by_id(&lines, 1);
        assert_eq!(detect.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(detect.get("top_k").and_then(Json::as_array).map(<[Json]>::len), Some(3));
        // The TCP answer matches a direct call on the shared session's twin.
        let direct = detector.detect(&DetectRequest::new(3, AlgorithmKind::BottomK)).unwrap();
        let first = detect.get("top_k").unwrap().as_array().unwrap()[0]
            .get("node")
            .and_then(Json::as_u64)
            .unwrap();
        assert_eq!(first, direct.top_k[0].node.0 as u64);
    }
}
